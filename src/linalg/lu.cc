#include "linalg/lu.h"

#include <cmath>
#include <numeric>
#include <vector>

namespace iim::linalg {

namespace {

constexpr double kPivotEps = 1e-12;

// In-place LU with partial pivoting. Returns false if singular.
// perm_sign (optional) receives +1/-1 for the permutation parity.
bool Factor(Matrix* a, std::vector<size_t>* perm, int* perm_sign) {
  size_t n = a->rows();
  perm->resize(n);
  std::iota(perm->begin(), perm->end(), 0);
  if (perm_sign != nullptr) *perm_sign = 1;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs((*a)(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs((*a)(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < kPivotEps) return false;
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j)
        std::swap((*a)(col, j), (*a)(pivot, j));
      std::swap((*perm)[col], (*perm)[pivot]);
      if (perm_sign != nullptr) *perm_sign = -*perm_sign;
    }
    for (size_t r = col + 1; r < n; ++r) {
      double f = (*a)(r, col) / (*a)(col, col);
      (*a)(r, col) = f;
      for (size_t j = col + 1; j < n; ++j)
        (*a)(r, j) -= f * (*a)(col, j);
    }
  }
  return true;
}

}  // namespace

Status LuSolve(const Matrix& a, const Vector& b, Vector* x) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LuSolve: matrix not square");
  }
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("LuSolve: size mismatch");
  }
  Matrix lu = a;
  std::vector<size_t> perm;
  if (!Factor(&lu, &perm, nullptr)) {
    return Status::FailedPrecondition("LuSolve: singular matrix");
  }
  size_t n = a.rows();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[perm[i]];
    for (size_t k = 0; k < i; ++k) sum -= lu(i, k) * y[k];
    y[i] = sum;
  }
  x->assign(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= lu(ii, k) * (*x)[k];
    (*x)[ii] = sum / lu(ii, ii);
  }
  return Status::OK();
}

double Determinant(const Matrix& a) {
  if (a.rows() != a.cols() || a.empty()) return 0.0;
  Matrix lu = a;
  std::vector<size_t> perm;
  int sign = 1;
  if (!Factor(&lu, &perm, &sign)) return 0.0;
  double det = sign;
  for (size_t i = 0; i < a.rows(); ++i) det *= lu(i, i);
  return det;
}

}  // namespace iim::linalg
