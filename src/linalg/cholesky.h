// Cholesky factorization and SPD linear solve.
//
// Used for ridge normal equations (X^T X + alpha*I) phi = X^T y, which are
// symmetric positive definite whenever alpha > 0.

#ifndef IIM_LINALG_CHOLESKY_H_
#define IIM_LINALG_CHOLESKY_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace iim::linalg {

// Factors SPD matrix A = L * L^T (L lower triangular). Fails with
// FailedPrecondition if A is not (numerically) positive definite.
Status CholeskyFactor(const Matrix& a, Matrix* l);

// Solves A x = b for SPD A via Cholesky. x is resized to b.size().
Status CholeskySolve(const Matrix& a, const Vector& b, Vector* x);

// Solves A X = B column-by-column (B and X are m x p).
Status CholeskySolveMatrix(const Matrix& a, const Matrix& b, Matrix* x);

// Inverse of an SPD matrix via Cholesky.
Status CholeskyInverse(const Matrix& a, Matrix* inv);

}  // namespace iim::linalg

#endif  // IIM_LINALG_CHOLESKY_H_
