// Thin singular value decomposition A = U S V^T for tall matrices.
//
// Computed from the eigen-decomposition of A^T A (cols is the small
// attribute dimension in this library). Used by the SVD imputation
// baseline (Troyanskaya et al.) for low-rank reconstruction.

#ifndef IIM_LINALG_SVD_H_
#define IIM_LINALG_SVD_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace iim::linalg {

struct Svd {
  Matrix u;          // n x r
  Vector singular;   // r values, descending
  Matrix v;          // m x r (columns are right singular vectors)
};

// Thin SVD keeping at most `rank` components (rank <= cols). rank == 0
// keeps all cols. Singular values below `tol` are dropped.
Status ThinSvd(const Matrix& a, Svd* out, size_t rank = 0,
               double tol = 1e-10);

// Rank-r reconstruction U_r S_r V_r^T.
Matrix LowRankReconstruct(const Svd& svd, size_t rank);

}  // namespace iim::linalg

#endif  // IIM_LINALG_SVD_H_
