#include "baselines/glr_imputer.h"

#include "regress/ridge.h"

namespace iim::baselines {

Status GlrImputer::FitImpl() {
  size_t n = table().NumRows(), p = features().size();
  linalg::Matrix x(n, p);
  linalg::Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    data::RowView row = table().Row(i);
    for (size_t j = 0; j < p; ++j) {
      x(i, j) = row[static_cast<size_t>(features()[j])];
    }
    y[i] = row[static_cast<size_t>(target())];
  }
  regress::RidgeOptions ropt;
  ropt.alpha = alpha_;
  ASSIGN_OR_RETURN(model_, regress::FitRidge(x, y, ropt));
  return Status::OK();
}

Result<double> GlrImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  return model_.Predict(FeatureVector(tuple));
}

}  // namespace iim::baselines
