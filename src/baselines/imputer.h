// Imputer: the interface every imputation method implements (the thirteen
// baselines of Table II plus IIM itself in core/).
//
// Protocol (matching Section VI-A2 of the paper): the method is fitted on
// the relation r of complete tuples for one incomplete attribute Ax and a
// set of complete attributes F; it then imputes incomplete tuples one by
// one from their F values. Methods that model the joint distribution (SVD,
// GMM, IFC) fit on all of r's attributes and condition on F at impute time.

#ifndef IIM_BASELINES_IMPUTER_H_
#define IIM_BASELINES_IMPUTER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/table.h"

namespace iim::baselines {

class Imputer {
 public:
  virtual ~Imputer() = default;

  // Method name as used in the paper's tables ("kNN", "GLR", ...).
  virtual std::string Name() const = 0;

  // Learns whatever the method needs from the complete relation. `target`
  // is the incomplete attribute Ax; `features` are the complete attributes
  // F (column indices into `complete`). The relation must outlive the
  // imputer: implementations keep a pointer plus indexes into it.
  virtual Status Fit(const data::Table& complete, int target,
                     const std::vector<int>& features) = 0;

  // Imputes t_x[Ax] for a tuple whose `features` values are present.
  // `tuple` must have the arity of the fitted table (the target cell value
  // is ignored and may be NaN).
  virtual Result<double> ImputeOne(const data::RowView& tuple) const = 0;

  // Batched imputation: entry i answers rows[i] (value or per-tuple
  // error). The default loops ImputeOne serially; methods whose per-tuple
  // imputation is independent and thread-safe (IIM, kNN) override it to
  // fan out over a thread pool. Entry order never depends on threading.
  virtual std::vector<Result<double>> ImputeBatch(
      const std::vector<data::RowView>& rows) const;
};

// Knobs shared across baseline constructors; each method reads the subset
// it understands (defaults follow the paper's setup where stated).
struct BaselineOptions {
  size_t k = 5;               // imputation neighbors (kNN, kNNE, LOESS, ...)
  double alpha = 1e-6;        // ridge stabilizer for regression methods
  size_t clusters = 3;        // IFC / GMM components
  size_t svd_rank = 0;        // 0 = choose by 90% spectral energy
  size_t pmm_donors = 5;      // PMM donor pool (mice default)
  int gbdt_rounds = 60;       // XGB stand-in boosting rounds
  int gbdt_depth = 4;
  double gbdt_learning_rate = 0.1;
  uint64_t seed = 7;          // for methods with randomness (BLR, PMM, ...)
  // Worker threads for methods with a parallel ImputeBatch (0 = all
  // hardware threads). Methods without one ignore it.
  size_t threads = 1;
};

// Fan-out shared by the parallel ImputeBatch overrides: imputes every row
// with imputer.ImputeOne over a pool of `threads` workers (0 = all
// hardware threads). imputer.ImputeOne must be thread-safe. Output order
// matches `rows` for any thread count.
std::vector<Result<double>> ParallelImputeBatch(
    const Imputer& imputer, const std::vector<data::RowView>& rows,
    size_t threads);

// Common bookkeeping shared by the concrete imputers.
class ImputerBase : public Imputer {
 public:
  Status Fit(const data::Table& complete, int target,
             const std::vector<int>& features) override;

 protected:
  // Validates arguments, stores the fit context, then calls FitImpl.
  virtual Status FitImpl() = 0;

  bool fitted() const { return fitted_; }
  const data::Table& table() const { return *table_; }
  int target() const { return target_; }
  const std::vector<int>& features() const { return features_; }

  // Gathers the F coordinates of a tuple.
  std::vector<double> FeatureVector(const data::RowView& tuple) const {
    return tuple.Gather(features_);
  }

  Status CheckReady(const data::RowView& tuple) const;

 private:
  const data::Table* table_ = nullptr;
  int target_ = -1;
  std::vector<int> features_;
  bool fitted_ = false;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_IMPUTER_H_
