// GMM (Yan et al.): fit a Gaussian mixture over the complete relation and
// impute with the posterior-weighted *cluster averages* of the target
// attribute, sum_c p(c | t_x[F]) mu_c[Ax] — the "cluster average" tuple
// model of Table II. (conditional_mean below switches to the stronger
// regression-corrected conditional expectation
// E[Ax | F] = mu_c,x + S_c,xF S_c,FF^{-1} (t_x[F] - mu_c,F), which is not
// what the paper's baseline does.)

#ifndef IIM_BASELINES_GMM_IMPUTER_H_
#define IIM_BASELINES_GMM_IMPUTER_H_

#include "baselines/imputer.h"
#include "cluster/gmm.h"

namespace iim::baselines {

class GmmImputer final : public ImputerBase {
 public:
  explicit GmmImputer(const BaselineOptions& options,
                      bool conditional_mean = false)
      : components_(options.clusters),
        seed_(options.seed),
        conditional_mean_(conditional_mean) {}

  std::string Name() const override { return "GMM"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

 protected:
  Status FitImpl() override;

 private:
  size_t components_;
  uint64_t seed_;
  bool conditional_mean_;
  cluster::GaussianMixture mixture_;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_GMM_IMPUTER_H_
