#include "baselines/xgb_imputer.h"

namespace iim::baselines {

Status XgbImputer::FitImpl() {
  size_t n = table().NumRows(), p = features().size();
  linalg::Matrix x(n, p);
  linalg::Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    data::RowView row = table().Row(i);
    for (size_t j = 0; j < p; ++j) {
      x(i, j) = row[static_cast<size_t>(features()[j])];
    }
    y[i] = row[static_cast<size_t>(target())];
  }
  Rng rng(seed_);
  return model_.Fit(x, y, gbdt_options_, &rng);
}

Result<double> XgbImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  return model_.Predict(FeatureVector(tuple));
}

}  // namespace iim::baselines
