#include "baselines/pmm_imputer.h"

#include <algorithm>
#include <cmath>

namespace iim::baselines {

Status PmmImputer::FitImpl() {
  if (donors_ == 0) {
    return Status::InvalidArgument("PMM: donors must be positive");
  }
  size_t n = table().NumRows(), p = features().size();
  linalg::Matrix x(n, p);
  linalg::Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    data::RowView row = table().Row(i);
    for (size_t j = 0; j < p; ++j) {
      x(i, j) = row[static_cast<size_t>(features()[j])];
    }
    y[i] = row[static_cast<size_t>(target())];
  }
  ASSIGN_OR_RETURN(draw_,
                   regress::DrawBayesianLinearModel(x, y, &rng_, alpha_));
  predictions_.clear();
  predictions_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    predictions_.emplace_back(draw_.mean.Predict(x.Row(i)), y[i]);
  }
  std::sort(predictions_.begin(), predictions_.end());
  return Status::OK();
}

Result<double> PmmImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  // mice's type-1 matching: the incomplete tuple is predicted with the
  // posterior *draw*, donors with the posterior *mean*.
  double target_pred = draw_.model.Predict(FeatureVector(tuple));

  // Expand around the insertion point to collect the closest donors.
  auto it = std::lower_bound(
      predictions_.begin(), predictions_.end(),
      std::make_pair(target_pred, -std::numeric_limits<double>::infinity()));
  size_t hi = static_cast<size_t>(it - predictions_.begin());
  size_t lo = hi;  // donors are predictions_[lo, hi)
  size_t want = std::min(donors_, predictions_.size());
  while (hi - lo < want) {
    bool can_left = lo > 0;
    bool can_right = hi < predictions_.size();
    if (!can_left && !can_right) break;
    double dl = can_left
                    ? std::fabs(predictions_[lo - 1].first - target_pred)
                    : std::numeric_limits<double>::infinity();
    double dr = can_right
                    ? std::fabs(predictions_[hi].first - target_pred)
                    : std::numeric_limits<double>::infinity();
    if (dl <= dr) {
      --lo;
    } else {
      ++hi;
    }
  }
  size_t pick = lo + static_cast<size_t>(rng_.UniformInt(
                         0, static_cast<int64_t>(hi - lo - 1)));
  return predictions_[pick].second;
}

}  // namespace iim::baselines
