// Streaming-fit adapters for the cheap challenger imputers used by the
// quality monitor (src/stream/quality.h).
//
// The batch baselines (MeanImputer, GlrImputer) re-scan the whole relation
// on every Fit, which is fine for one-shot evaluation but not for a probe
// that runs inside the ingest path. These adapters maintain the same
// sufficient statistics incrementally: a per-column running sum for the
// mean, and one IncrementalRidge accumulator per column for the global
// regression (predicting each column from all the others). Window
// evictions down-date the accumulators in place; when the ridge
// conditioning guard refuses a down-date the affected column is flagged
// and lazily restreamed from the caller's row source, mirroring the
// down-date/restream protocol of stream::OrderCore.

#ifndef IIM_BASELINES_STREAMING_FIT_H_
#define IIM_BASELINES_STREAMING_FIT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "regress/incremental_ridge.h"
#include "regress/linear_model.h"

namespace iim::baselines {

// Running per-column mean over a multiset of d-dimensional rows.
class StreamingMeanFit {
 public:
  explicit StreamingMeanFit(size_t d) : d_(d), sums_(d, 0.0) {}

  void Add(const double* row);
  void Remove(const double* row);

  size_t rows() const { return rows_; }
  // Mean of column c over the current rows; NotFound while empty.
  Result<double> Mean(size_t c) const;

 private:
  size_t d_;
  size_t rows_ = 0;
  std::vector<double> sums_;
};

// Global ridge regression of every column on all the others, maintained
// incrementally: d accumulators, each over d-1 predictors. Predictors for
// column c are the row's other columns in index order (the same gather
// the quality monitor uses for its probes).
class StreamingRidgeFit {
 public:
  // Emits every current row (length d) exactly once — the restream
  // fallback when a down-date is refused. The emit callback must be
  // invoked synchronously.
  using RowSource =
      std::function<void(const std::function<void(const double*)>& emit)>;

  StreamingRidgeFit(size_t d, double alpha);

  void Add(const double* row);
  // Down-dates every column's accumulator; a refused down-date flags that
  // column for a lazy restream instead of corrupting its conditioning.
  void Remove(const double* row);

  // Predicts row[c] from the row's other columns. Restreams the column's
  // accumulator from `source` first if a down-date was refused since the
  // last rebuild. Fails (NotFound) while no rows are folded in.
  Result<double> Predict(size_t c, const double* row,
                         const RowSource& source);

  size_t rows() const { return rows_; }
  // Columns rebuilt from scratch after a refused down-date (telemetry).
  uint64_t restreams() const { return restreams_; }

 private:
  // Gathers the d-1 predictors of column c into x_.
  void GatherInto(size_t c, const double* row);
  // Solved model for column c, rebuilding/caching as needed.
  Result<const regress::LinearModel*> ModelFor(size_t c,
                                               const RowSource& source);

  size_t d_;
  double alpha_;
  size_t rows_ = 0;
  uint64_t restreams_ = 0;
  std::vector<regress::IncrementalRidge> acc_;  // one per column
  std::vector<uint8_t> needs_restream_;         // per column
  std::vector<uint8_t> model_valid_;            // per column
  std::vector<regress::LinearModel> models_;    // per column, lazily solved
  std::vector<double> x_;                       // gather scratch, d-1
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_STREAMING_FIT_H_
