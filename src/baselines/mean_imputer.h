// Mean (Farhangfar et al.): impute with the global average of the target
// attribute — the degenerate "all tuples are my neighbors" tuple model.

#ifndef IIM_BASELINES_MEAN_IMPUTER_H_
#define IIM_BASELINES_MEAN_IMPUTER_H_

#include "baselines/imputer.h"

namespace iim::baselines {

class MeanImputer final : public ImputerBase {
 public:
  std::string Name() const override { return "Mean"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

 protected:
  Status FitImpl() override;

 private:
  double mean_ = 0.0;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_MEAN_IMPUTER_H_
