#include "baselines/knn_imputer.h"

namespace iim::baselines {

Status KnnImputer::FitImpl() {
  if (k_ == 0) return Status::InvalidArgument("kNN: k must be positive");
  index_ = neighbors::MakeIndex(&table(), features());
  return Status::OK();
}

Result<double> KnnImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  neighbors::QueryOptions qopt;
  qopt.k = k_;
  std::vector<neighbors::Neighbor> nbrs = index_->Query(tuple, qopt);
  if (nbrs.empty()) {
    return Status::Internal("kNN: no neighbors found");
  }
  double sum = 0.0;
  for (const auto& nb : nbrs) {
    sum += table().At(nb.index, static_cast<size_t>(target()));
  }
  return sum / static_cast<double>(nbrs.size());
}

std::vector<Result<double>> KnnImputer::ImputeBatch(
    const std::vector<data::RowView>& rows) const {
  return ParallelImputeBatch(*this, rows, threads_);
}

}  // namespace iim::baselines
