#include "baselines/ifc_imputer.h"

#include <cmath>

namespace iim::baselines {

Status IfcImputer::FitImpl() {
  if (clusters_ == 0) {
    return Status::InvalidArgument("IFC: clusters must be positive");
  }
  cluster::FuzzyCMeansOptions fopt;
  fopt.c = clusters_;
  fopt.fuzzifier = fuzzifier_;
  Rng rng(seed_);
  ASSIGN_OR_RETURN(cluster::FuzzyCMeansResult result,
                   cluster::FuzzyCMeans(table().ToMatrix(), fopt, &rng));
  centers_ = std::move(result.centers);
  return Status::OK();
}

Result<double> IfcImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  size_t c = centers_.rows();
  // Memberships against centers projected onto the complete attributes F.
  std::vector<double> dist2(c, 0.0);
  for (size_t j = 0; j < c; ++j) {
    for (int f : features()) {
      double d = tuple[static_cast<size_t>(f)] -
                 centers_(j, static_cast<size_t>(f));
      dist2[j] += d * d;
    }
  }
  // A tuple on a centroid gets that centroid's value outright.
  for (size_t j = 0; j < c; ++j) {
    if (dist2[j] == 0.0) {
      return centers_(j, static_cast<size_t>(target()));
    }
  }
  double exponent = 1.0 / (fuzzifier_ - 1.0);
  double weight_sum = 0.0, value = 0.0;
  for (size_t j = 0; j < c; ++j) {
    double denom = 0.0;
    for (size_t l = 0; l < c; ++l) {
      denom += std::pow(dist2[j] / dist2[l], exponent);
    }
    double u = 1.0 / denom;
    weight_sum += u;
    value += u * centers_(j, static_cast<size_t>(target()));
  }
  return value / weight_sum;
}

}  // namespace iim::baselines
