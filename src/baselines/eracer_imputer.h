// ERACER (Mayfield et al.): relational regression combining the attribute
// model g and the tuple model h — the target is regressed on the tuple's
// own F values *and* the mean target value of its k nearest neighbors.
// The published system iterates belief updates over a sensor graph; on a
// single static relation one converged pass (fit on complete tuples whose
// neighbor aggregates are exact) is the faithful reduction.

#ifndef IIM_BASELINES_ERACER_IMPUTER_H_
#define IIM_BASELINES_ERACER_IMPUTER_H_

#include <memory>

#include "baselines/imputer.h"
#include "neighbors/kdtree.h"
#include "regress/linear_model.h"

namespace iim::baselines {

class EracerImputer final : public ImputerBase {
 public:
  explicit EracerImputer(const BaselineOptions& options)
      : k_(options.k), alpha_(options.alpha) {}

  std::string Name() const override { return "ERACER"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

 protected:
  Status FitImpl() override;

 private:
  double NeighborAverage(const data::RowView& tuple, size_t exclude) const;

  size_t k_;
  double alpha_;
  std::unique_ptr<neighbors::NeighborIndex> index_;
  regress::LinearModel model_;  // over [F..., neighbor_avg]
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_ERACER_IMPUTER_H_
