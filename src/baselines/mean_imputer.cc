#include "baselines/mean_imputer.h"

namespace iim::baselines {

Status MeanImputer::FitImpl() {
  double sum = 0.0;
  for (size_t i = 0; i < table().NumRows(); ++i) {
    sum += table().At(i, static_cast<size_t>(target()));
  }
  mean_ = sum / static_cast<double>(table().NumRows());
  return Status::OK();
}

Result<double> MeanImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  return mean_;
}

}  // namespace iim::baselines
