// PMM (Landerman et al.; mice.pmm): predictive mean matching. Predict
// t_x[Ax] with a posterior-drawn linear model, find the `donors` complete
// tuples whose (posterior-mean) predictions are closest, and return one
// donor's *observed* value at random.

#ifndef IIM_BASELINES_PMM_IMPUTER_H_
#define IIM_BASELINES_PMM_IMPUTER_H_

#include <vector>

#include "baselines/imputer.h"
#include "common/rng.h"
#include "regress/bayesian_lr.h"

namespace iim::baselines {

class PmmImputer final : public ImputerBase {
 public:
  explicit PmmImputer(const BaselineOptions& options)
      : alpha_(options.alpha),
        donors_(options.pmm_donors),
        rng_(options.seed) {}

  std::string Name() const override { return "PMM"; }
  // Picks a random donor: not thread-safe, like the R original.
  Result<double> ImputeOne(const data::RowView& tuple) const override;

 protected:
  Status FitImpl() override;

 private:
  double alpha_;
  size_t donors_;
  mutable Rng rng_;
  regress::BayesianDraw draw_;
  // (prediction via posterior-mean model, observed target), sorted by
  // prediction for binary-search donor lookup.
  std::vector<std::pair<double, double>> predictions_;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_PMM_IMPUTER_H_
