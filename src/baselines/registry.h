// Factory for imputers by paper name ("Mean", "kNN", ..., "IIM").

#ifndef IIM_BASELINES_REGISTRY_H_
#define IIM_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/imputer.h"
#include "common/result.h"

namespace iim::baselines {

// All baseline names in the column order of Table V (excludes IIM, which
// lives in core/ and is added by the bench harness).
std::vector<std::string> AllBaselineNames();

// Creates a baseline by name; NotFound for unknown names.
Result<std::unique_ptr<Imputer>> MakeBaseline(
    const std::string& name, const BaselineOptions& options = {});

}  // namespace iim::baselines

#endif  // IIM_BASELINES_REGISTRY_H_
