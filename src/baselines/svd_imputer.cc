#include "baselines/svd_imputer.h"

#include "linalg/cholesky.h"

namespace iim::baselines {

Status SvdImputer::FitImpl() {
  if (table().NumCols() < 3) {
    // With only one complete attribute there is no eigen-pattern structure
    // to exploit; the paper likewise reports SVD as n/a on 2-column data.
    return Status::NotSupported("SVD: needs at least 3 attributes");
  }
  RETURN_IF_ERROR(scaler_.Fit(table()));
  data::Table standardized = table();
  RETURN_IF_ERROR(scaler_.Transform(&standardized));

  linalg::Svd svd;
  RETURN_IF_ERROR(linalg::ThinSvd(standardized.ToMatrix(), &svd));

  size_t r = rank_;
  if (r == 0) {
    // Smallest rank covering 90% of the spectral energy.
    double total = 0.0;
    for (double s : svd.singular) total += s * s;
    double acc = 0.0;
    for (r = 0; r < svd.singular.size(); ++r) {
      acc += svd.singular[r] * svd.singular[r];
      if (acc >= 0.9 * total) {
        ++r;
        break;
      }
    }
  }
  r = std::min(r, svd.singular.size());
  effective_rank_ = std::max<size_t>(1, r);

  v_ = linalg::Matrix(table().NumCols(), effective_rank_);
  for (size_t i = 0; i < v_.rows(); ++i) {
    for (size_t j = 0; j < effective_rank_; ++j) v_(i, j) = svd.v(i, j);
  }
  return Status::OK();
}

Result<double> SvdImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  size_t q = features().size(), r = effective_rank_;
  // Least squares fit of the observed coordinates on the eigen-patterns:
  // min_c || V_obs c - z_obs ||^2 with a small ridge for rank safety.
  linalg::Matrix vtv(r, r);
  linalg::Vector vtz(r, 0.0);
  for (size_t i = 0; i < q; ++i) {
    size_t fi = static_cast<size_t>(features()[i]);
    double z = scaler_.TransformCell(tuple[fi], fi);
    for (size_t a = 0; a < r; ++a) {
      vtz[a] += v_(fi, a) * z;
      for (size_t b = a; b < r; ++b) {
        vtv(a, b) += v_(fi, a) * v_(fi, b);
      }
    }
  }
  for (size_t a = 0; a < r; ++a)
    for (size_t b = 0; b < a; ++b) vtv(a, b) = vtv(b, a);
  vtv.AddScaledIdentity(1e-9);
  linalg::Vector coef;
  RETURN_IF_ERROR(linalg::CholeskySolve(vtv, vtz, &coef));

  size_t tgt = static_cast<size_t>(target());
  double z_hat = 0.0;
  for (size_t a = 0; a < r; ++a) z_hat += v_(tgt, a) * coef[a];
  return scaler_.InverseTransformCell(z_hat, tgt);
}

}  // namespace iim::baselines
