// kNN imputation (Altman; Batista & Monard): find the k nearest complete
// tuples on F (Formula 1) and impute with the arithmetic mean of their
// target values (Formula 2).

#ifndef IIM_BASELINES_KNN_IMPUTER_H_
#define IIM_BASELINES_KNN_IMPUTER_H_

#include <memory>

#include "baselines/imputer.h"
#include "neighbors/kdtree.h"

namespace iim::baselines {

class KnnImputer final : public ImputerBase {
 public:
  explicit KnnImputer(const BaselineOptions& options)
      : k_(options.k), threads_(options.threads) {}

  std::string Name() const override { return "kNN"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;
  // Per-tuple imputation is stateless, so the batch fans out over
  // options.threads workers.
  std::vector<Result<double>> ImputeBatch(
      const std::vector<data::RowView>& rows) const override;

 protected:
  Status FitImpl() override;

 private:
  size_t k_;
  size_t threads_;
  std::unique_ptr<neighbors::NeighborIndex> index_;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_KNN_IMPUTER_H_
