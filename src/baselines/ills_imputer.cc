#include "baselines/ills_imputer.h"

#include "linalg/cholesky.h"

namespace iim::baselines {

Status IllsImputer::FitImpl() {
  if (k_ == 0) return Status::InvalidArgument("ILLS: k must be positive");
  index_ = neighbors::MakeIndex(&table(), features());
  return Status::OK();
}

Result<double> IllsImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  neighbors::QueryOptions qopt;
  qopt.k = std::max<size_t>(k_, 2);
  std::vector<neighbors::Neighbor> nbrs = index_->Query(tuple, qopt);
  if (nbrs.empty()) return Status::Internal("ILLS: no neighbors");
  size_t k = nbrs.size(), q = features().size();

  // Solve min_w || B^T w - b ||^2 (+ ridge), B = k x |F| neighbor features,
  // b = the tuple's F vector. The k x k normal equations are B B^T w = B b.
  linalg::Matrix b_mat(k, q);
  linalg::Vector y(k);
  for (size_t i = 0; i < k; ++i) {
    data::RowView row = table().Row(nbrs[i].index);
    for (size_t j = 0; j < q; ++j) {
      b_mat(i, j) = row[static_cast<size_t>(features()[j])];
    }
    y[i] = row[static_cast<size_t>(target())];
  }
  std::vector<double> b = FeatureVector(tuple);

  linalg::Matrix bbt(k, k);
  linalg::Vector bb(k, 0.0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i; j < k; ++j) {
      double acc = 0.0;
      for (size_t d = 0; d < q; ++d) acc += b_mat(i, d) * b_mat(j, d);
      bbt(i, j) = bbt(j, i) = acc;
    }
    double acc = 0.0;
    for (size_t d = 0; d < q; ++d) acc += b_mat(i, d) * b[d];
    bb[i] = acc;
  }
  // The system is underdetermined when k > |F|; the ridge selects the
  // minimum-norm-ish combination.
  bbt.AddScaledIdentity(1e-6 + 1e-9 * bbt(0, 0));
  linalg::Vector w;
  RETURN_IF_ERROR(linalg::CholeskySolve(bbt, bb, &w));

  double value = 0.0;
  for (size_t i = 0; i < k; ++i) value += w[i] * y[i];
  return value;
}

}  // namespace iim::baselines
