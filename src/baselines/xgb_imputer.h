// XGB: tree-boosting imputation (Chen & Guestrin's XGBoost family),
// implemented with the library's hand-rolled gradient-boosted CART trees.

#ifndef IIM_BASELINES_XGB_IMPUTER_H_
#define IIM_BASELINES_XGB_IMPUTER_H_

#include "baselines/imputer.h"
#include "common/rng.h"
#include "regress/gbdt.h"

namespace iim::baselines {

class XgbImputer final : public ImputerBase {
 public:
  explicit XgbImputer(const BaselineOptions& options) : seed_(options.seed) {
    gbdt_options_.rounds = options.gbdt_rounds;
    gbdt_options_.learning_rate = options.gbdt_learning_rate;
    gbdt_options_.tree.max_depth = options.gbdt_depth;
    gbdt_options_.subsample = 0.8;
  }

  std::string Name() const override { return "XGB"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

 protected:
  Status FitImpl() override;

 private:
  uint64_t seed_;
  regress::GbdtOptions gbdt_options_;
  regress::Gbdt model_;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_XGB_IMPUTER_H_
