#include "baselines/loess_imputer.h"

#include <algorithm>

#include "regress/loess.h"

namespace iim::baselines {

Status LoessImputer::FitImpl() {
  if (k_ == 0) return Status::InvalidArgument("LOESS: k must be positive");
  index_ = neighbors::MakeIndex(&table(), features());
  return Status::OK();
}

Result<double> LoessImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  neighbors::QueryOptions qopt;
  // A linear fit in |F| dimensions needs at least |F|+1 points; widen the
  // window if the configured k is too small.
  qopt.k = std::max(k_, features().size() + 2);
  std::vector<neighbors::Neighbor> nbrs = index_->Query(tuple, qopt);
  if (nbrs.empty()) return Status::Internal("LOESS: no neighbors");

  linalg::Matrix x(nbrs.size(), features().size());
  linalg::Vector y(nbrs.size()), dist(nbrs.size());
  for (size_t i = 0; i < nbrs.size(); ++i) {
    data::RowView row = table().Row(nbrs[i].index);
    for (size_t j = 0; j < features().size(); ++j) {
      x(i, j) = row[static_cast<size_t>(features()[j])];
    }
    y[i] = row[static_cast<size_t>(target())];
    dist[i] = nbrs[i].distance;
  }
  regress::LoessOptions lopt;
  lopt.alpha = alpha_;
  return regress::LoessPredict(x, y, dist, FeatureVector(tuple), lopt);
}

}  // namespace iim::baselines
