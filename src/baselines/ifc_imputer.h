// IFC (Nikfalazar et al.): fuzzy-clustering imputation. Fit fuzzy c-means
// over the complete relation; impute with the membership-weighted average
// of cluster centroid values, memberships computed on the complete
// attributes F.

#ifndef IIM_BASELINES_IFC_IMPUTER_H_
#define IIM_BASELINES_IFC_IMPUTER_H_

#include "baselines/imputer.h"
#include "cluster/fuzzy_cmeans.h"

namespace iim::baselines {

class IfcImputer final : public ImputerBase {
 public:
  explicit IfcImputer(const BaselineOptions& options)
      : clusters_(options.clusters), seed_(options.seed) {}

  std::string Name() const override { return "IFC"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

 protected:
  Status FitImpl() override;

 private:
  size_t clusters_;
  uint64_t seed_;
  double fuzzifier_ = 2.0;
  linalg::Matrix centers_;  // clusters x m (all attributes)
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_IFC_IMPUTER_H_
