#include "baselines/imputer.h"

#include <algorithm>
#include <cmath>

namespace iim::baselines {

Status ImputerBase::Fit(const data::Table& complete, int target,
                        const std::vector<int>& features) {
  fitted_ = false;
  if (complete.empty()) {
    return Status::InvalidArgument(Name() + ": empty relation");
  }
  if (target < 0 || static_cast<size_t>(target) >= complete.NumCols()) {
    return Status::InvalidArgument(Name() + ": target out of range");
  }
  if (features.empty()) {
    return Status::InvalidArgument(Name() + ": no complete attributes");
  }
  for (int f : features) {
    if (f < 0 || static_cast<size_t>(f) >= complete.NumCols()) {
      return Status::InvalidArgument(Name() + ": feature out of range");
    }
    if (f == target) {
      return Status::InvalidArgument(Name() +
                                     ": target cannot be a feature");
    }
  }
  // The fitted columns must be NaN-free.
  for (size_t i = 0; i < complete.NumRows(); ++i) {
    if (complete.IsNaN(i, static_cast<size_t>(target))) {
      return Status::InvalidArgument(Name() + ": NaN in target column");
    }
    for (int f : features) {
      if (complete.IsNaN(i, static_cast<size_t>(f))) {
        return Status::InvalidArgument(Name() + ": NaN in feature column");
      }
    }
  }
  table_ = &complete;
  target_ = target;
  features_ = features;
  RETURN_IF_ERROR(FitImpl());
  fitted_ = true;
  return Status::OK();
}

Status ImputerBase::CheckReady(const data::RowView& tuple) const {
  if (!fitted_) return Status::FailedPrecondition(Name() + ": not fitted");
  if (tuple.size() != table_->NumCols()) {
    return Status::InvalidArgument(Name() + ": tuple arity mismatch");
  }
  for (int f : features_) {
    if (std::isnan(tuple[static_cast<size_t>(f)])) {
      return Status::InvalidArgument(Name() +
                                     ": NaN in complete attribute of tuple");
    }
  }
  return Status::OK();
}

}  // namespace iim::baselines
