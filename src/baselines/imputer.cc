#include "baselines/imputer.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace iim::baselines {

std::vector<Result<double>> Imputer::ImputeBatch(
    const std::vector<data::RowView>& rows) const {
  std::vector<Result<double>> out;
  out.reserve(rows.size());
  for (const data::RowView& tuple : rows) out.push_back(ImputeOne(tuple));
  return out;
}

std::vector<Result<double>> ParallelImputeBatch(
    const Imputer& imputer, const std::vector<data::RowView>& rows,
    size_t threads) {
  // Placeholder value; every slot is overwritten below.
  std::vector<Result<double>> out(rows.size(), Result<double>(0.0));
  ThreadPool pool(threads);
  constexpr size_t kBatchGrain = 16;
  pool.ParallelFor(rows.size(), kBatchGrain,
                   [&](size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       out[i] = imputer.ImputeOne(rows[i]);
                     }
                   });
  return out;
}

Status ImputerBase::Fit(const data::Table& complete, int target,
                        const std::vector<int>& features) {
  fitted_ = false;
  if (complete.empty()) {
    return Status::InvalidArgument(Name() + ": empty relation");
  }
  if (target < 0 || static_cast<size_t>(target) >= complete.NumCols()) {
    return Status::InvalidArgument(Name() + ": target out of range");
  }
  if (features.empty()) {
    return Status::InvalidArgument(Name() + ": no complete attributes");
  }
  for (int f : features) {
    if (f < 0 || static_cast<size_t>(f) >= complete.NumCols()) {
      return Status::InvalidArgument(Name() + ": feature out of range");
    }
    if (f == target) {
      return Status::InvalidArgument(Name() +
                                     ": target cannot be a feature");
    }
  }
  // The fitted columns must be NaN-free.
  for (size_t i = 0; i < complete.NumRows(); ++i) {
    if (complete.IsNaN(i, static_cast<size_t>(target))) {
      return Status::InvalidArgument(Name() + ": NaN in target column");
    }
    for (int f : features) {
      if (complete.IsNaN(i, static_cast<size_t>(f))) {
        return Status::InvalidArgument(Name() + ": NaN in feature column");
      }
    }
  }
  table_ = &complete;
  target_ = target;
  features_ = features;
  RETURN_IF_ERROR(FitImpl());
  fitted_ = true;
  return Status::OK();
}

Status ImputerBase::CheckReady(const data::RowView& tuple) const {
  if (!fitted_) return Status::FailedPrecondition(Name() + ": not fitted");
  if (tuple.size() != table_->NumCols()) {
    return Status::InvalidArgument(Name() + ": tuple arity mismatch");
  }
  for (int f : features_) {
    if (std::isnan(tuple[static_cast<size_t>(f)])) {
      return Status::InvalidArgument(Name() +
                                     ": NaN in complete attribute of tuple");
    }
  }
  return Status::OK();
}

}  // namespace iim::baselines
