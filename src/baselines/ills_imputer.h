// ILLS (Cai et al.): local least squares over tuples. The incomplete
// tuple's F vector is expressed as a linear combination of its k nearest
// neighbors' F vectors; the same combination applied to the neighbors'
// target values yields the imputation (a learned tuple model h).

#ifndef IIM_BASELINES_ILLS_IMPUTER_H_
#define IIM_BASELINES_ILLS_IMPUTER_H_

#include <memory>

#include "baselines/imputer.h"
#include "neighbors/kdtree.h"

namespace iim::baselines {

class IllsImputer final : public ImputerBase {
 public:
  explicit IllsImputer(const BaselineOptions& options) : k_(options.k) {}

  std::string Name() const override { return "ILLS"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

 protected:
  Status FitImpl() override;

 private:
  size_t k_;
  std::unique_ptr<neighbors::NeighborIndex> index_;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_ILLS_IMPUTER_H_
