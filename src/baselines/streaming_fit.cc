#include "baselines/streaming_fit.h"

#include <string>

namespace iim::baselines {

void StreamingMeanFit::Add(const double* row) {
  for (size_t c = 0; c < d_; ++c) sums_[c] += row[c];
  ++rows_;
}

void StreamingMeanFit::Remove(const double* row) {
  for (size_t c = 0; c < d_; ++c) sums_[c] -= row[c];
  --rows_;
  // An emptied window restarts the sums exactly at zero so a long
  // add/remove history cannot leave drift behind.
  if (rows_ == 0) sums_.assign(d_, 0.0);
}

Result<double> StreamingMeanFit::Mean(size_t c) const {
  if (rows_ == 0) {
    return Status::NotFound("streaming mean: no rows fitted");
  }
  return sums_[c] / static_cast<double>(rows_);
}

StreamingRidgeFit::StreamingRidgeFit(size_t d, double alpha)
    : d_(d), alpha_(alpha) {
  acc_.reserve(d_);
  for (size_t c = 0; c < d_; ++c) {
    acc_.emplace_back(d_ > 0 ? d_ - 1 : 0);
  }
  needs_restream_.assign(d_, 0);
  model_valid_.assign(d_, 0);
  models_.resize(d_);
  x_.resize(d_ > 0 ? d_ - 1 : 0);
}

void StreamingRidgeFit::GatherInto(size_t c, const double* row) {
  size_t j = 0;
  for (size_t i = 0; i < d_; ++i) {
    if (i == c) continue;
    x_[j++] = row[i];
  }
}

void StreamingRidgeFit::Add(const double* row) {
  for (size_t c = 0; c < d_; ++c) {
    if (needs_restream_[c]) continue;  // rebuilt from scratch anyway
    GatherInto(c, row);
    acc_[c].AddRow(x_.data(), row[c]);
    model_valid_[c] = 0;
  }
  ++rows_;
}

void StreamingRidgeFit::Remove(const double* row) {
  for (size_t c = 0; c < d_; ++c) {
    if (needs_restream_[c]) continue;
    GatherInto(c, row);
    if (!acc_[c].RemoveRow(x_.data(), row[c])) {
      needs_restream_[c] = 1;
    }
    model_valid_[c] = 0;
  }
  --rows_;
}

Result<const regress::LinearModel*> StreamingRidgeFit::ModelFor(
    size_t c, const RowSource& source) {
  if (needs_restream_[c]) {
    acc_[c].Reset();
    source([this, c](const double* row) {
      GatherInto(c, row);
      acc_[c].AddRow(x_.data(), row[c]);
    });
    needs_restream_[c] = 0;
    ++restreams_;
  }
  if (!model_valid_[c]) {
    auto solved = acc_[c].Solve(alpha_);
    if (!solved.ok()) return solved.status();
    models_[c] = std::move(solved).value();
    model_valid_[c] = 1;
  }
  return &models_[c];
}

Result<double> StreamingRidgeFit::Predict(size_t c, const double* row,
                                          const RowSource& source) {
  if (rows_ == 0) {
    return Status::NotFound("streaming ridge: no rows fitted");
  }
  auto model = ModelFor(c, source);
  if (!model.ok()) return model.status();
  GatherInto(c, row);
  return model.value()->Predict(x_.data(), x_.size());
}

}  // namespace iim::baselines
