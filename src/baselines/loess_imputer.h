// LOESS (Cleveland & Loader): local regression — fit one tricube-weighted
// linear model over NN(t_x, F, k) per incomplete tuple, at impute time.

#ifndef IIM_BASELINES_LOESS_IMPUTER_H_
#define IIM_BASELINES_LOESS_IMPUTER_H_

#include <memory>

#include "baselines/imputer.h"
#include "neighbors/kdtree.h"

namespace iim::baselines {

class LoessImputer final : public ImputerBase {
 public:
  explicit LoessImputer(const BaselineOptions& options)
      : k_(options.k), alpha_(options.alpha) {}

  std::string Name() const override { return "LOESS"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

 protected:
  Status FitImpl() override;

 private:
  size_t k_;
  double alpha_;
  std::unique_ptr<neighbors::NeighborIndex> index_;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_LOESS_IMPUTER_H_
