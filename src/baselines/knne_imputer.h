// kNNE (Domeniconi & Yan): nearest-neighbor ensemble. Runs kNN on several
// feature subsets (each leave-one-out subset of F, plus F itself) and
// averages the per-subset imputations.

#ifndef IIM_BASELINES_KNNE_IMPUTER_H_
#define IIM_BASELINES_KNNE_IMPUTER_H_

#include <memory>
#include <vector>

#include "baselines/imputer.h"
#include "neighbors/kdtree.h"

namespace iim::baselines {

class KnneImputer final : public ImputerBase {
 public:
  explicit KnneImputer(const BaselineOptions& options) : k_(options.k) {}

  std::string Name() const override { return "kNNE"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

 protected:
  Status FitImpl() override;

 private:
  size_t k_;
  std::vector<std::unique_ptr<neighbors::NeighborIndex>> indexes_;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_KNNE_IMPUTER_H_
