#include "baselines/knne_imputer.h"

namespace iim::baselines {

Status KnneImputer::FitImpl() {
  if (k_ == 0) return Status::InvalidArgument("kNNE: k must be positive");
  indexes_.clear();
  // The full feature set plus each leave-one-out subset (when |F| > 1).
  indexes_.push_back(neighbors::MakeIndex(&table(), features()));
  if (features().size() > 1) {
    for (size_t drop = 0; drop < features().size(); ++drop) {
      std::vector<int> subset;
      subset.reserve(features().size() - 1);
      for (size_t i = 0; i < features().size(); ++i) {
        if (i != drop) subset.push_back(features()[i]);
      }
      indexes_.push_back(neighbors::MakeIndex(&table(), std::move(subset)));
    }
  }
  return Status::OK();
}

Result<double> KnneImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  neighbors::QueryOptions qopt;
  qopt.k = k_;
  double ensemble_sum = 0.0;
  size_t groups = 0;
  for (const auto& index : indexes_) {
    std::vector<neighbors::Neighbor> nbrs = index->Query(tuple, qopt);
    if (nbrs.empty()) continue;
    double sum = 0.0;
    for (const auto& nb : nbrs) {
      sum += table().At(nb.index, static_cast<size_t>(target()));
    }
    ensemble_sum += sum / static_cast<double>(nbrs.size());
    ++groups;
  }
  if (groups == 0) return Status::Internal("kNNE: no neighbor groups");
  return ensemble_sum / static_cast<double>(groups);
}

}  // namespace iim::baselines
