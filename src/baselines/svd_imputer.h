// SVD imputation (Troyanskaya et al.): express an incomplete tuple as a
// linear combination of the top-r right singular vectors ("eigen-patterns")
// of the standardized complete relation, fitted on the observed attributes
// by least squares, and read the missing attribute off the combination.

#ifndef IIM_BASELINES_SVD_IMPUTER_H_
#define IIM_BASELINES_SVD_IMPUTER_H_

#include "baselines/imputer.h"
#include "data/transforms.h"
#include "linalg/svd.h"

namespace iim::baselines {

class SvdImputer final : public ImputerBase {
 public:
  explicit SvdImputer(const BaselineOptions& options)
      : rank_(options.svd_rank) {}

  std::string Name() const override { return "SVD"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

  size_t effective_rank() const { return effective_rank_; }

 protected:
  Status FitImpl() override;

 private:
  size_t rank_;  // 0 = pick smallest rank covering 90% spectral energy
  size_t effective_rank_ = 0;
  data::StandardScaler scaler_;
  linalg::Matrix v_;  // m x r right singular vectors
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_SVD_IMPUTER_H_
