#include "baselines/gmm_imputer.h"

#include "linalg/cholesky.h"

namespace iim::baselines {

Status GmmImputer::FitImpl() {
  if (components_ == 0) {
    return Status::InvalidArgument("GMM: components must be positive");
  }
  cluster::GmmOptions gopt;
  gopt.components = components_;
  Rng rng(seed_);
  return mixture_.Fit(table().ToMatrix(), gopt, &rng);
}

Result<double> GmmImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  std::vector<double> xf = FeatureVector(tuple);
  ASSIGN_OR_RETURN(std::vector<double> resp,
                   mixture_.Responsibilities(xf, features()));

  size_t tgt = static_cast<size_t>(target());
  double value = 0.0;
  for (size_t c = 0; c < mixture_.NumComponents(); ++c) {
    const cluster::GaussianComponent& g = mixture_.component(c);
    if (!conditional_mean_) {
      // Paper baseline: posterior-weighted cluster average of Ax.
      value += resp[c] * g.mean[tgt];
      continue;
    }
    // Conditional mean of the target given the observed F coordinates.
    size_t q = features().size();
    linalg::Matrix s_ff(q, q);
    linalg::Vector delta(q), s_tf(q);
    for (size_t i = 0; i < q; ++i) {
      size_t fi = static_cast<size_t>(features()[i]);
      delta[i] = xf[i] - g.mean[fi];
      s_tf[i] = g.covariance(tgt, fi);
      for (size_t j = 0; j < q; ++j) {
        s_ff(i, j) = g.covariance(fi, static_cast<size_t>(features()[j]));
      }
    }
    linalg::Vector w;
    Status st = linalg::CholeskySolve(s_ff, delta, &w);
    double cond = g.mean[tgt];
    if (st.ok()) {
      for (size_t i = 0; i < q; ++i) cond += s_tf[i] * w[i];
    }
    value += resp[c] * cond;
  }
  return value;
}

}  // namespace iim::baselines
