// BLR: Bayesian linear regression imputation following mice.norm — draw
// (beta*, sigma*) from the posterior once per fit, impute with
// (1, t_x[F]) beta* + N(0, sigma*^2).

#ifndef IIM_BASELINES_BLR_IMPUTER_H_
#define IIM_BASELINES_BLR_IMPUTER_H_

#include "baselines/imputer.h"
#include "common/rng.h"
#include "regress/bayesian_lr.h"

namespace iim::baselines {

class BlrImputer final : public ImputerBase {
 public:
  explicit BlrImputer(const BaselineOptions& options)
      : alpha_(options.alpha), rng_(options.seed) {}

  std::string Name() const override { return "BLR"; }
  // Draws imputation noise: not thread-safe, like the R original.
  Result<double> ImputeOne(const data::RowView& tuple) const override;

 protected:
  Status FitImpl() override;

 private:
  double alpha_;
  mutable Rng rng_;
  regress::BayesianDraw draw_;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_BLR_IMPUTER_H_
