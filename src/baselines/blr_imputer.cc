#include "baselines/blr_imputer.h"

namespace iim::baselines {

Status BlrImputer::FitImpl() {
  size_t n = table().NumRows(), p = features().size();
  linalg::Matrix x(n, p);
  linalg::Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    data::RowView row = table().Row(i);
    for (size_t j = 0; j < p; ++j) {
      x(i, j) = row[static_cast<size_t>(features()[j])];
    }
    y[i] = row[static_cast<size_t>(target())];
  }
  ASSIGN_OR_RETURN(draw_,
                   regress::DrawBayesianLinearModel(x, y, &rng_, alpha_));
  return Status::OK();
}

Result<double> BlrImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  double mean = draw_.model.Predict(FeatureVector(tuple));
  return mean + rng_.Gaussian(0.0, draw_.sigma);
}

}  // namespace iim::baselines
