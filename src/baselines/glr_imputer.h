// GLR (Little): global linear regression from F to Ax learned once over
// all complete tuples (Formulas 3-4); ridge-regularized per Formula 5.

#ifndef IIM_BASELINES_GLR_IMPUTER_H_
#define IIM_BASELINES_GLR_IMPUTER_H_

#include "baselines/imputer.h"
#include "regress/linear_model.h"

namespace iim::baselines {

class GlrImputer final : public ImputerBase {
 public:
  explicit GlrImputer(const BaselineOptions& options)
      : alpha_(options.alpha) {}

  std::string Name() const override { return "GLR"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

  // The fitted global parameter phi_r (for tests and Proposition 2 checks).
  const regress::LinearModel& model() const { return model_; }

 protected:
  Status FitImpl() override;

 private:
  double alpha_;
  regress::LinearModel model_;
};

}  // namespace iim::baselines

#endif  // IIM_BASELINES_GLR_IMPUTER_H_
