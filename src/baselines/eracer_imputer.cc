#include "baselines/eracer_imputer.h"

#include "regress/ridge.h"

namespace iim::baselines {

Status EracerImputer::FitImpl() {
  if (k_ == 0) return Status::InvalidArgument("ERACER: k must be positive");
  index_ = neighbors::MakeIndex(&table(), features());

  size_t n = table().NumRows(), q = features().size();
  linalg::Matrix x(n, q + 1);
  linalg::Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    data::RowView row = table().Row(i);
    for (size_t j = 0; j < q; ++j) {
      x(i, j) = row[static_cast<size_t>(features()[j])];
    }
    // Training aggregates exclude the tuple itself, else the regression
    // would learn to copy leaked self-information.
    x(i, q) = NeighborAverage(row, i);
    y[i] = row[static_cast<size_t>(target())];
  }
  regress::RidgeOptions ropt;
  ropt.alpha = alpha_;
  ASSIGN_OR_RETURN(model_, regress::FitRidge(x, y, ropt));
  return Status::OK();
}

double EracerImputer::NeighborAverage(const data::RowView& tuple,
                                      size_t exclude) const {
  neighbors::QueryOptions qopt;
  qopt.k = k_;
  qopt.exclude = exclude;
  std::vector<neighbors::Neighbor> nbrs = index_->Query(tuple, qopt);
  if (nbrs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& nb : nbrs) {
    sum += table().At(nb.index, static_cast<size_t>(target()));
  }
  return sum / static_cast<double>(nbrs.size());
}

Result<double> EracerImputer::ImputeOne(const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  std::vector<double> x = FeatureVector(tuple);
  x.push_back(
      NeighborAverage(tuple, neighbors::QueryOptions::kNoExclusion));
  return model_.Predict(x);
}

}  // namespace iim::baselines
