#include "baselines/registry.h"

#include "baselines/blr_imputer.h"
#include "baselines/eracer_imputer.h"
#include "baselines/glr_imputer.h"
#include "baselines/gmm_imputer.h"
#include "baselines/ifc_imputer.h"
#include "baselines/ills_imputer.h"
#include "baselines/knn_imputer.h"
#include "baselines/knne_imputer.h"
#include "baselines/loess_imputer.h"
#include "baselines/mean_imputer.h"
#include "baselines/pmm_imputer.h"
#include "baselines/svd_imputer.h"
#include "baselines/xgb_imputer.h"

namespace iim::baselines {

std::vector<std::string> AllBaselineNames() {
  return {"Mean", "kNN",   "kNNE", "IFC",    "GMM", "SVD", "ILLS",
          "GLR",  "LOESS", "BLR",  "ERACER", "PMM", "XGB"};
}

Result<std::unique_ptr<Imputer>> MakeBaseline(const std::string& name,
                                              const BaselineOptions& opt) {
  std::unique_ptr<Imputer> imputer;
  if (name == "Mean") {
    imputer = std::make_unique<MeanImputer>();
  } else if (name == "kNN") {
    imputer = std::make_unique<KnnImputer>(opt);
  } else if (name == "kNNE") {
    imputer = std::make_unique<KnneImputer>(opt);
  } else if (name == "IFC") {
    imputer = std::make_unique<IfcImputer>(opt);
  } else if (name == "GMM") {
    imputer = std::make_unique<GmmImputer>(opt);
  } else if (name == "SVD") {
    imputer = std::make_unique<SvdImputer>(opt);
  } else if (name == "ILLS") {
    imputer = std::make_unique<IllsImputer>(opt);
  } else if (name == "GLR") {
    imputer = std::make_unique<GlrImputer>(opt);
  } else if (name == "LOESS") {
    imputer = std::make_unique<LoessImputer>(opt);
  } else if (name == "BLR") {
    imputer = std::make_unique<BlrImputer>(opt);
  } else if (name == "ERACER") {
    imputer = std::make_unique<EracerImputer>(opt);
  } else if (name == "PMM") {
    imputer = std::make_unique<PmmImputer>(opt);
  } else if (name == "XGB") {
    imputer = std::make_unique<XgbImputer>(opt);
  } else {
    return Status::NotFound("unknown imputer: " + name);
  }
  return imputer;
}

}  // namespace iim::baselines
