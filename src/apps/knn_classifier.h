// kNN classifier (the Weka "ibk" stand-in of Table VII): majority vote of
// the k nearest labeled tuples. Distances skip NaN coordinates (normalized
// by the number of observed dimensions) so the classifier still runs on
// data with missing values — the "Missing" (no-imputation) column.

#ifndef IIM_APPS_KNN_CLASSIFIER_H_
#define IIM_APPS_KNN_CLASSIFIER_H_

#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace iim::apps {

class KnnClassifier {
 public:
  explicit KnnClassifier(size_t k = 5) : k_(k) {}

  // `train` must carry labels. The table must outlive the classifier.
  Status Fit(const data::Table& train);

  // Majority label among the k nearest training tuples (ties broken by
  // smaller label id).
  Result<int> Classify(const data::RowView& tuple) const;

 private:
  size_t k_;
  const data::Table* train_ = nullptr;
};

// NaN-tolerant distance: sqrt(mean over observed-in-both dims of squared
// differences); infinity when no dimension is observed in both.
double NanAwareDistance(const data::RowView& a, const data::RowView& b);

}  // namespace iim::apps

#endif  // IIM_APPS_KNN_CLASSIFIER_H_
