#include "apps/knn_classifier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace iim::apps {

double NanAwareDistance(const data::RowView& a, const data::RowView& b) {
  double acc = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) continue;
    double d = a[i] - b[i];
    acc += d * d;
    ++used;
  }
  if (used == 0) return std::numeric_limits<double>::infinity();
  return std::sqrt(acc / static_cast<double>(used));
}

Status KnnClassifier::Fit(const data::Table& train) {
  if (train.empty()) {
    return Status::InvalidArgument("KnnClassifier: empty training set");
  }
  if (!train.HasLabels()) {
    return Status::InvalidArgument("KnnClassifier: training set unlabeled");
  }
  if (k_ == 0) {
    return Status::InvalidArgument("KnnClassifier: k must be positive");
  }
  train_ = &train;
  return Status::OK();
}

Result<int> KnnClassifier::Classify(const data::RowView& tuple) const {
  if (train_ == nullptr) {
    return Status::FailedPrecondition("KnnClassifier: not fitted");
  }
  // Partial-select the k nearest (distance, row) pairs.
  std::vector<std::pair<double, size_t>> dist;
  dist.reserve(train_->NumRows());
  for (size_t i = 0; i < train_->NumRows(); ++i) {
    dist.emplace_back(NanAwareDistance(tuple, train_->Row(i)), i);
  }
  size_t k = std::min(k_, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());
  std::map<int, size_t> votes;
  for (size_t i = 0; i < k; ++i) {
    ++votes[train_->Label(dist[i].second)];
  }
  int best_label = votes.begin()->first;
  size_t best_count = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace iim::apps
