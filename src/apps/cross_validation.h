// Stratified k-fold cross-validated classification (Table VII protocol:
// 5-fold, missing values present in both training and testing folds).

#ifndef IIM_APPS_CROSS_VALIDATION_H_
#define IIM_APPS_CROSS_VALIDATION_H_

#include <cstdint>

#include "common/result.h"
#include "data/table.h"

namespace iim::apps {

struct CvOptions {
  size_t folds = 5;
  size_t knn_k = 5;
  uint64_t seed = 17;
};

// Macro-F1 of the kNN classifier under stratified k-fold CV on `dataset`
// (which must be labeled; attribute NaNs are tolerated).
Result<double> CrossValidatedF1(const data::Table& dataset,
                                const CvOptions& options = {});

}  // namespace iim::apps

#endif  // IIM_APPS_CROSS_VALIDATION_H_
