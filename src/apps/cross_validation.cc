#include "apps/cross_validation.h"

#include "apps/knn_classifier.h"
#include "common/rng.h"
#include "data/transforms.h"
#include "eval/metrics.h"

namespace iim::apps {

Result<double> CrossValidatedF1(const data::Table& dataset,
                                const CvOptions& options) {
  if (!dataset.HasLabels()) {
    return Status::InvalidArgument("CrossValidatedF1: unlabeled dataset");
  }
  if (options.folds < 2) {
    return Status::InvalidArgument("CrossValidatedF1: need >= 2 folds");
  }
  Rng rng(options.seed);
  std::vector<std::vector<size_t>> folds =
      data::KFoldSplit(dataset, options.folds, &rng);

  std::vector<int> predicted, truth;
  for (size_t f = 0; f < folds.size(); ++f) {
    std::vector<size_t> train_rows;
    for (size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      train_rows.insert(train_rows.end(), folds[g].begin(), folds[g].end());
    }
    data::Table train = dataset.TakeRows(train_rows);
    KnnClassifier classifier(options.knn_k);
    RETURN_IF_ERROR(classifier.Fit(train));
    for (size_t row : folds[f]) {
      ASSIGN_OR_RETURN(int label, classifier.Classify(dataset.Row(row)));
      predicted.push_back(label);
      truth.push_back(dataset.Label(row));
    }
  }
  return eval::MacroF1(predicted, truth);
}

}  // namespace iim::apps
