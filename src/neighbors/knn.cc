#include "neighbors/knn.h"

#include <algorithm>

#include "neighbors/distance.h"

namespace iim::neighbors {

namespace {

// Queries per ParallelFor block: one query is ~n distance evaluations, so
// even small blocks amortize the scheduling cost.
constexpr size_t kQueryGrain = 8;

}  // namespace

std::vector<std::vector<Neighbor>> NeighborIndex::QueryMany(
    const std::vector<BatchQuery>& batch, size_t k, ThreadPool* pool) const {
  std::vector<std::vector<Neighbor>> results(batch.size());
  auto run = [this, &batch, &results, k](size_t begin, size_t end) {
    QueryOptions qopt;
    qopt.k = k;
    for (size_t i = begin; i < end; ++i) {
      qopt.exclude = batch[i].exclude;
      results[i] = Query(batch[i].query, qopt);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(batch.size(), kQueryGrain, run);
  } else {
    run(0, batch.size());
  }
  return results;
}

BruteForceIndex::BruteForceIndex(const data::Table* table,
                                 std::vector<int> cols)
    : cols_(std::move(cols)) {
  size_t n = table->NumRows();
  size_t d = cols_.size();
  points_.resize(n * d);
  for (size_t i = 0; i < n; ++i) {
    data::RowView row = table->Row(i);
    for (size_t j = 0; j < d; ++j) {
      points_[i * d + j] = row[static_cast<size_t>(cols_[j])];
    }
  }
}

std::vector<Neighbor> BruteForceIndex::Scan(const data::RowView& query,
                                            size_t exclude) const {
  size_t n = size();  // the construction-time snapshot, not the live table
  size_t d = cols_.size();
  std::vector<double> q(d);
  for (size_t j = 0; j < d; ++j) q[j] = query[static_cast<size_t>(cols_[j])];
  std::vector<Neighbor> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    out.push_back(
        Neighbor{i, NormalizedEuclidean(q.data(), points_.data() + i * d, d)});
  }
  return out;
}

std::vector<Neighbor> BruteForceIndex::Query(
    const data::RowView& query, const QueryOptions& options) const {
  if (options.k == 0) return {};
  std::vector<Neighbor> out = Scan(query, options.exclude);
  if (out.size() > options.k) {
    // Top-k selection: O(n + k log k) instead of the O(n log n) full sort.
    std::nth_element(out.begin(),
                     out.begin() + static_cast<long>(options.k), out.end(),
                     NeighborLess);
    out.resize(options.k);
  }
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

std::vector<Neighbor> BruteForceIndex::QueryAll(const data::RowView& query,
                                                size_t exclude) const {
  std::vector<Neighbor> out = Scan(query, exclude);
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

}  // namespace iim::neighbors
