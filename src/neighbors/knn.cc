#include "neighbors/knn.h"

#include <algorithm>

#include "neighbors/distance.h"

namespace iim::neighbors {

namespace {

bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

}  // namespace

BruteForceIndex::BruteForceIndex(const data::Table* table,
                                 std::vector<int> cols)
    : table_(table), cols_(std::move(cols)) {}

std::vector<Neighbor> BruteForceIndex::Query(
    const data::RowView& query, const QueryOptions& options) const {
  std::vector<Neighbor> all = QueryAll(query, options.exclude);
  if (all.size() > options.k) all.resize(options.k);
  return all;
}

std::vector<Neighbor> BruteForceIndex::QueryAll(const data::RowView& query,
                                                size_t exclude) const {
  std::vector<Neighbor> out;
  out.reserve(table_->NumRows());
  for (size_t i = 0; i < table_->NumRows(); ++i) {
    if (i == exclude) continue;
    out.push_back(
        Neighbor{i, NormalizedEuclidean(query, table_->Row(i), cols_)});
  }
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

}  // namespace iim::neighbors
