// Tuple distances on a subset of attributes.
//
// The paper (Formula 1) uses Euclidean distance on the complete attributes
// F normalized by |F|:  d_{x,i} = sqrt( sum_{A in F} (t_x[A]-t_i[A])^2 / |F| ).

#ifndef IIM_NEIGHBORS_DISTANCE_H_
#define IIM_NEIGHBORS_DISTANCE_H_

#include <vector>

#include "data/table.h"

namespace iim::neighbors {

// Formula 1. Attributes listed in `cols`; both rows must be non-NaN there.
double NormalizedEuclidean(const data::RowView& a, const data::RowView& b,
                           const std::vector<int>& cols);

// Same on pre-gathered coordinate vectors (a.size() == b.size()).
double NormalizedEuclidean(const std::vector<double>& a,
                           const std::vector<double>& b);

// Same on d contiguous pre-gathered coordinates (the contiguous index
// fast path). Bit-identical to the vector overload.
double NormalizedEuclidean(const double* a, const double* b, size_t d);

// Plain (unnormalized) Euclidean on `cols`.
double Euclidean(const data::RowView& a, const data::RowView& b,
                 const std::vector<int>& cols);

}  // namespace iim::neighbors

#endif  // IIM_NEIGHBORS_DISTANCE_H_
