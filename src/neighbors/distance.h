// Tuple distances on a subset of attributes.
//
// The paper (Formula 1) uses Euclidean distance on the complete attributes
// F normalized by |F|:  d_{x,i} = sqrt( sum_{A in F} (t_x[A]-t_i[A])^2 / |F| ).
//
// All overloads funnel into one blocked squared-L2 kernel (SquaredL2):
// four independent accumulator chains that the compiler can keep in SIMD
// lanes and contract into FMAs, with a fixed summation order. Every call
// form — raw pointers over a gathered point buffer, RowView pairs on a
// column subset — reproduces that exact order, so the KD-tree, the brute
// scan, the dynamic index tail and the streaming maintenance loops all
// agree on every distance bit for bit, ties included.

#ifndef IIM_NEIGHBORS_DISTANCE_H_
#define IIM_NEIGHBORS_DISTANCE_H_

#include <cstddef>
#include <vector>

#include "data/table.h"

namespace iim::neighbors {

// sum_i (a[i] - b[i])^2 over d contiguous values, blocked summation order
// (lanes 0..3 then pairwise lane merge; the shared kernel every distance
// overload reduces to).
double SquaredL2(const double* a, const double* b, size_t d);

// Formula 1. Attributes listed in `cols`; both rows must be non-NaN there.
double NormalizedEuclidean(const data::RowView& a, const data::RowView& b,
                           const std::vector<int>& cols);

// Same on pre-gathered coordinate vectors (a.size() == b.size()).
double NormalizedEuclidean(const std::vector<double>& a,
                           const std::vector<double>& b);

// Same on d contiguous pre-gathered coordinates (the contiguous index
// fast path). Bit-identical to the vector overload.
double NormalizedEuclidean(const double* a, const double* b, size_t d);

// Plain (unnormalized) Euclidean on `cols`.
double Euclidean(const data::RowView& a, const data::RowView& b,
                 const std::vector<int>& cols);

}  // namespace iim::neighbors

#endif  // IIM_NEIGHBORS_DISTANCE_H_
