#include "neighbors/distance.h"

#include <cassert>
#include <cmath>

namespace iim::neighbors {

// The summation order is part of the engine's bit-identity contract: four
// independent chains over lanes i % 4, merged pairwise, then the scalar
// tail folded into the lane-0 chain. Keeping the order fixed (and shared
// by the gathered RowView overloads below) is what lets the KD-tree, the
// brute scan and the streaming tail interchange results bitwise. The
// chains carry no cross-iteration dependence, so the compiler is free to
// vectorize the loop body and contract each step into an FMA without any
// reassociation license.
double SquaredL2(const double* a, const double* b, size_t d) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    double d0 = a[i] - b[i];
    double d1 = a[i + 1] - b[i + 1];
    double d2 = a[i + 2] - b[i + 2];
    double d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < d; ++i) {
    double dd = a[i] - b[i];
    acc0 += dd * dd;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

namespace {

// SquaredL2 with both sides gathered through a column subset. Mirrors the
// contiguous kernel's blocking and merge order exactly so a distance is
// the same bit pattern whether the coordinates were pre-gathered or not.
double SquaredL2Gather(const data::RowView& a, const data::RowView& b,
                       const std::vector<int>& cols) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t d = cols.size();
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    size_t c0 = static_cast<size_t>(cols[i]);
    size_t c1 = static_cast<size_t>(cols[i + 1]);
    size_t c2 = static_cast<size_t>(cols[i + 2]);
    size_t c3 = static_cast<size_t>(cols[i + 3]);
    double d0 = a[c0] - b[c0];
    double d1 = a[c1] - b[c1];
    double d2 = a[c2] - b[c2];
    double d3 = a[c3] - b[c3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < d; ++i) {
    size_t c = static_cast<size_t>(cols[i]);
    double dd = a[c] - b[c];
    acc0 += dd * dd;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

}  // namespace

double NormalizedEuclidean(const data::RowView& a, const data::RowView& b,
                           const std::vector<int>& cols) {
  assert(!cols.empty());
  return std::sqrt(SquaredL2Gather(a, b, cols) /
                   static_cast<double>(cols.size()));
}

double NormalizedEuclidean(const std::vector<double>& a,
                           const std::vector<double>& b) {
  assert(a.size() == b.size() && !a.empty());
  return NormalizedEuclidean(a.data(), b.data(), a.size());
}

double NormalizedEuclidean(const double* a, const double* b, size_t d) {
  assert(d > 0);
  return std::sqrt(SquaredL2(a, b, d) / static_cast<double>(d));
}

double Euclidean(const data::RowView& a, const data::RowView& b,
                 const std::vector<int>& cols) {
  return std::sqrt(SquaredL2Gather(a, b, cols));
}

}  // namespace iim::neighbors
