#include "neighbors/distance.h"

#include <cassert>
#include <cmath>

namespace iim::neighbors {

double NormalizedEuclidean(const data::RowView& a, const data::RowView& b,
                           const std::vector<int>& cols) {
  assert(!cols.empty());
  double acc = 0.0;
  for (int c : cols) {
    double d = a[static_cast<size_t>(c)] - b[static_cast<size_t>(c)];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(cols.size()));
}

double NormalizedEuclidean(const std::vector<double>& a,
                           const std::vector<double>& b) {
  assert(a.size() == b.size() && !a.empty());
  return NormalizedEuclidean(a.data(), b.data(), a.size());
}

double NormalizedEuclidean(const double* a, const double* b, size_t d) {
  assert(d > 0);
  double acc = 0.0;
  for (size_t i = 0; i < d; ++i) {
    double delta = a[i] - b[i];
    acc += delta * delta;
  }
  return std::sqrt(acc / static_cast<double>(d));
}

double Euclidean(const data::RowView& a, const data::RowView& b,
                 const std::vector<int>& cols) {
  double acc = 0.0;
  for (int c : cols) {
    double d = a[static_cast<size_t>(c)] - b[static_cast<size_t>(c)];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace iim::neighbors
