#include "neighbors/kdtree.h"

#include <algorithm>
#include <cmath>

#include "neighbors/distance.h"

namespace iim::neighbors {

namespace {

// Orders by (distance, index); the heap uses the inverse so its top is the
// current worst neighbor. Matching BruteForceIndex tie-breaking keeps the
// two indexes bit-for-bit interchangeable.
bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

}  // namespace

KdTreeIndex::KdTreeIndex(const data::Table* table, std::vector<int> cols)
    : table_(table), cols_(std::move(cols)) {
  // Points are stored unscaled and leaf distances are computed with the
  // exact NormalizedEuclidean used by BruteForceIndex, so the two indexes
  // produce bitwise-identical results (including distance ties).
  points_.reserve(table_->NumRows());
  for (size_t i = 0; i < table_->NumRows(); ++i) {
    points_.push_back(table_->Row(i).Gather(cols_));
  }
  order_.resize(points_.size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (!points_.empty()) root_ = Build(0, points_.size(), 0);
}

int KdTreeIndex::Build(size_t begin, size_t end, int depth) {
  Node node;
  if (end - begin <= kLeafSize) {
    node.begin = begin;
    node.end = end;
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }
  // Split on the axis with the largest spread in this range.
  size_t dims = cols_.size();
  int best_axis = depth % static_cast<int>(dims);
  double best_spread = -1.0;
  for (size_t d = 0; d < dims; ++d) {
    double lo = points_[order_[begin]][d], hi = lo;
    for (size_t i = begin + 1; i < end; ++i) {
      double v = points_[order_[i]][d];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = static_cast<int>(d);
    }
  }
  size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<long>(begin),
                   order_.begin() + static_cast<long>(mid),
                   order_.begin() + static_cast<long>(end),
                   [this, best_axis](size_t a, size_t b) {
                     return points_[a][static_cast<size_t>(best_axis)] <
                            points_[b][static_cast<size_t>(best_axis)];
                   });
  node.axis = best_axis;
  node.split = points_[order_[mid]][static_cast<size_t>(best_axis)];
  nodes_.push_back(node);
  int id = static_cast<int>(nodes_.size() - 1);
  int left = Build(begin, mid, depth + 1);
  int right = Build(mid, end, depth + 1);
  nodes_[static_cast<size_t>(id)].left = left;
  nodes_[static_cast<size_t>(id)].right = right;
  return id;
}

void KdTreeIndex::Search(int node_id, const std::vector<double>& q,
                         const QueryOptions& options,
                         std::vector<Neighbor>* heap) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  if (node.IsLeaf()) {
    for (size_t i = node.begin; i < node.end; ++i) {
      size_t row = order_[i];
      if (row == options.exclude) continue;
      Neighbor cand{row, NormalizedEuclidean(q, points_[row])};
      if (heap->size() < options.k) {
        heap->push_back(cand);
        std::push_heap(heap->begin(), heap->end(), NeighborLess);
      } else if (NeighborLess(cand, heap->front())) {
        std::pop_heap(heap->begin(), heap->end(), NeighborLess);
        heap->back() = cand;
        std::push_heap(heap->begin(), heap->end(), NeighborLess);
      }
    }
    return;
  }
  double delta = q[static_cast<size_t>(node.axis)] - node.split;
  int near = delta <= 0.0 ? node.left : node.right;
  int far = delta <= 0.0 ? node.right : node.left;
  Search(near, q, options, heap);
  // The normalized distance from q to the splitting plane is
  // |delta| / sqrt(|F|). Visit the far side unless the plane is strictly
  // farther than the current worst neighbor; equality keeps ties exact.
  if (heap->size() < options.k) {
    Search(far, q, options, heap);
  } else {
    double worst = heap->front().distance;
    // Conservative slack: squaring `worst` can round below the true
    // worst^2, which on exact distance ties would prune a subtree holding
    // an equidistant smaller-index neighbor. The relative epsilon makes
    // the bound err toward visiting.
    double bound = worst * worst * static_cast<double>(cols_.size());
    if (delta * delta <= bound + bound * 1e-12) {
      Search(far, q, options, heap);
    }
  }
}

std::vector<Neighbor> KdTreeIndex::Query(const data::RowView& query,
                                         const QueryOptions& options) const {
  std::vector<Neighbor> heap;
  if (root_ < 0 || options.k == 0) return heap;
  heap.reserve(options.k);
  std::vector<double> q = query.Gather(cols_);
  Search(root_, q, options, &heap);
  std::sort(heap.begin(), heap.end(), NeighborLess);
  return heap;
}

std::vector<Neighbor> KdTreeIndex::QueryAll(const data::RowView& query,
                                            size_t exclude) const {
  std::vector<double> q = query.Gather(cols_);
  std::vector<Neighbor> out;
  out.reserve(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i == exclude) continue;
    out.push_back(Neighbor{i, NormalizedEuclidean(q, points_[i])});
  }
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

std::unique_ptr<NeighborIndex> MakeIndex(const data::Table* table,
                                         std::vector<int> cols,
                                         size_t kdtree_threshold) {
  if (table->NumRows() >= kdtree_threshold) {
    return std::make_unique<KdTreeIndex>(table, std::move(cols));
  }
  return std::make_unique<BruteForceIndex>(table, std::move(cols));
}

}  // namespace iim::neighbors
