#include "neighbors/kdtree.h"

#include <algorithm>
#include <cmath>

#include "neighbors/distance.h"

namespace iim::neighbors {

void FlatKdTree::Clear() {
  n_ = 0;
  d_ = 0;
  order_.clear();
  nodes_.clear();
  root_ = -1;
}

void FlatKdTree::Build(const double* points, size_t n, size_t d) {
  Clear();
  n_ = n;
  d_ = d;
  order_.resize(n);
  for (size_t i = 0; i < n; ++i) order_[i] = i;
  nodes_.reserve(n / kLeafSize * 2 + 1);
  if (n > 0) root_ = BuildRange(points, 0, n, 0);
}

int FlatKdTree::BuildRange(const double* points, size_t begin, size_t end,
                           int depth) {
  Node node;
  if (end - begin <= kLeafSize) {
    node.begin = begin;
    node.end = end;
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }
  // Split on the axis with the largest spread in this range.
  int best_axis = depth % static_cast<int>(d_);
  double best_spread = -1.0;
  for (size_t d = 0; d < d_; ++d) {
    double lo = points[order_[begin] * d_ + d], hi = lo;
    for (size_t i = begin + 1; i < end; ++i) {
      double v = points[order_[i] * d_ + d];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = static_cast<int>(d);
    }
  }
  size_t mid = begin + (end - begin) / 2;
  size_t axis = static_cast<size_t>(best_axis);
  std::nth_element(order_.begin() + static_cast<long>(begin),
                   order_.begin() + static_cast<long>(mid),
                   order_.begin() + static_cast<long>(end),
                   [points, this, axis](size_t a, size_t b) {
                     return points[a * d_ + axis] < points[b * d_ + axis];
                   });
  node.axis = best_axis;
  node.split = points[order_[mid] * d_ + axis];
  nodes_.push_back(node);
  int id = static_cast<int>(nodes_.size() - 1);
  int left = BuildRange(points, begin, mid, depth + 1);
  int right = BuildRange(points, mid, end, depth + 1);
  nodes_[static_cast<size_t>(id)].left = left;
  nodes_[static_cast<size_t>(id)].right = right;
  return id;
}

void FlatKdTree::SearchNode(int node_id, const double* points,
                            const double* q, const QueryOptions& options,
                            std::vector<Neighbor>* heap,
                            const uint8_t* alive) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  if (node.IsLeaf()) {
    for (size_t i = node.begin; i < node.end; ++i) {
      size_t row = order_[i];
      if (row == options.exclude) continue;
      if (alive != nullptr && alive[row] == 0) continue;
      PushNeighborHeap(
          heap, options.k,
          Neighbor{row, NormalizedEuclidean(q, points + row * d_, d_)});
    }
    return;
  }
  double delta = q[static_cast<size_t>(node.axis)] - node.split;
  int near = delta <= 0.0 ? node.left : node.right;
  int far = delta <= 0.0 ? node.right : node.left;
  SearchNode(near, points, q, options, heap, alive);
  // The normalized distance from q to the splitting plane is
  // |delta| / sqrt(|F|). Visit the far side unless the plane is strictly
  // farther than the current worst neighbor; equality keeps ties exact.
  if (heap->size() < options.k) {
    SearchNode(far, points, q, options, heap, alive);
  } else {
    double worst = heap->front().distance;
    // Conservative slack: squaring `worst` can round below the true
    // worst^2, which on exact distance ties would prune a subtree holding
    // an equidistant smaller-index neighbor. The relative epsilon makes
    // the bound err toward visiting.
    double bound = worst * worst * static_cast<double>(d_);
    if (delta * delta <= bound + bound * 1e-12) {
      SearchNode(far, points, q, options, heap, alive);
    }
  }
}

void FlatKdTree::Search(const double* points, const double* q,
                        const QueryOptions& options,
                        std::vector<Neighbor>* heap,
                        const uint8_t* alive) const {
  if (root_ < 0 || options.k == 0) return;
  SearchNode(root_, points, q, options, heap, alive);
}

void FlatKdTree::RangeNode(int node_id, const double* points,
                           const double* q, double r,
                           std::vector<Neighbor>* out,
                           const uint8_t* alive) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  if (node.IsLeaf()) {
    for (size_t i = node.begin; i < node.end; ++i) {
      size_t row = order_[i];
      if (alive != nullptr && alive[row] == 0) continue;
      double dist = NormalizedEuclidean(q, points + row * d_, d_);
      if (dist <= r) out->push_back(Neighbor{row, dist});
    }
    return;
  }
  double delta = q[static_cast<size_t>(node.axis)] - node.split;
  int near = delta <= 0.0 ? node.left : node.right;
  int far = delta <= 0.0 ? node.right : node.left;
  RangeNode(near, points, q, r, out, alive);
  // A far-side point within radius r needs |delta| / sqrt(|F|) <= r; the
  // same relative slack as SearchNode keeps a rounded-down r^2 * |F| from
  // pruning a point sitting exactly on the radius.
  double bound = r * r * static_cast<double>(d_);
  if (delta * delta <= bound + bound * 1e-12) {
    RangeNode(far, points, q, r, out, alive);
  }
}

void FlatKdTree::RangeSearch(const double* points, const double* q,
                             double r, std::vector<Neighbor>* out,
                             const uint8_t* alive) const {
  if (root_ < 0 || r < 0.0) return;
  RangeNode(root_, points, q, r, out, alive);
}

KdTreeIndex::KdTreeIndex(const data::Table* table, std::vector<int> cols)
    : cols_(std::move(cols)) {
  // Points are stored unscaled and leaf distances are computed with the
  // exact NormalizedEuclidean used by BruteForceIndex, so the two indexes
  // produce bitwise-identical results (including distance ties).
  size_t n = table->NumRows();
  size_t d = cols_.size();
  points_.resize(n * d);
  for (size_t i = 0; i < n; ++i) {
    data::RowView row = table->Row(i);
    for (size_t j = 0; j < d; ++j) {
      points_[i * d + j] = row[static_cast<size_t>(cols_[j])];
    }
  }
  tree_.Build(points_.data(), n, d);
}

std::vector<Neighbor> KdTreeIndex::Query(const data::RowView& query,
                                         const QueryOptions& options) const {
  std::vector<Neighbor> heap;
  if (tree_.empty() || options.k == 0) return heap;
  heap.reserve(options.k);
  std::vector<double> q = query.Gather(cols_);
  tree_.Search(points_.data(), q.data(), options, &heap);
  std::sort(heap.begin(), heap.end(), NeighborLess);
  return heap;
}

std::vector<Neighbor> KdTreeIndex::QueryAll(const data::RowView& query,
                                            size_t exclude) const {
  std::vector<double> q = query.Gather(cols_);
  size_t n = tree_.size();
  size_t d = cols_.size();
  std::vector<Neighbor> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    out.push_back(
        Neighbor{i, NormalizedEuclidean(q.data(), points_.data() + i * d, d)});
  }
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

std::unique_ptr<NeighborIndex> MakeIndex(const data::Table* table,
                                         std::vector<int> cols,
                                         size_t kdtree_threshold) {
  if (table->NumRows() >= kdtree_threshold) {
    return std::make_unique<KdTreeIndex>(table, std::move(cols));
  }
  return std::make_unique<BruteForceIndex>(table, std::move(cols));
}

}  // namespace iim::neighbors
