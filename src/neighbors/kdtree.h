// KD-tree accelerated exact nearest-neighbor index.
//
// Same contract as BruteForceIndex; used for the large-n scalability
// experiments (SN with 100k tuples). Distances match Formula 1 exactly,
// so swapping indexes never changes results, only speed.

#ifndef IIM_NEIGHBORS_KDTREE_H_
#define IIM_NEIGHBORS_KDTREE_H_

#include <memory>
#include <vector>

#include "neighbors/knn.h"

namespace iim::neighbors {

class KdTreeIndex final : public NeighborIndex {
 public:
  KdTreeIndex(const data::Table* table, std::vector<int> cols);

  std::vector<Neighbor> Query(const data::RowView& query,
                              const QueryOptions& options) const override;
  // Falls back to a full scan: a sorted list of *all* points cannot beat
  // O(n log n) anyway.
  std::vector<Neighbor> QueryAll(const data::RowView& query,
                                 size_t exclude) const override;
  size_t size() const override { return points_.size(); }

 private:
  struct Node {
    int axis = -1;          // split dimension (index into cols_)
    double split = 0.0;     // split coordinate
    size_t begin = 0;       // leaf: range into order_
    size_t end = 0;
    int left = -1;          // children as indices into nodes_
    int right = -1;
    bool IsLeaf() const { return left < 0; }
  };

  static constexpr size_t kLeafSize = 16;

  int Build(size_t begin, size_t end, int depth);
  void Search(int node_id, const std::vector<double>& q,
              const QueryOptions& options,
              std::vector<Neighbor>* heap) const;

  const data::Table* table_;
  std::vector<int> cols_;
  std::vector<std::vector<double>> points_;  // projected coordinates
  std::vector<size_t> order_;                // row ids, permuted by Build
  std::vector<Node> nodes_;
  int root_ = -1;
};

// Picks KdTree for large tables, brute force otherwise.
std::unique_ptr<NeighborIndex> MakeIndex(const data::Table* table,
                                         std::vector<int> cols,
                                         size_t kdtree_threshold = 4096);

}  // namespace iim::neighbors

#endif  // IIM_NEIGHBORS_KDTREE_H_
