// KD-tree accelerated exact nearest-neighbor search.
//
// FlatKdTree is the tree core: it builds over an n x d row-major point
// buffer and answers bounded top-k searches with distances that match
// Formula 1 exactly, so swapping it in for a brute-force scan never
// changes results, only speed. KdTreeIndex wraps it behind the
// NeighborIndex contract for a frozen data::Table; stream::DynamicIndex
// reuses the same core over the immutable prefix of its growing buffer.

#ifndef IIM_NEIGHBORS_KDTREE_H_
#define IIM_NEIGHBORS_KDTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "neighbors/knn.h"

namespace iim::neighbors {

// Exact KD-tree over a flat row-major buffer of n points of dimension d.
//
// The buffer is NOT retained: Build reads it to place the splits, and every
// Search takes it again. Callers may grow the underlying storage past
// n * d after Build (amortized vector growth, appends) as long as the
// first n * d values are bit-unchanged — this is what gives the dynamic
// index cheap appends without rebuilding on every arrival.
class FlatKdTree {
 public:
  FlatKdTree() = default;

  void Build(const double* points, size_t n, size_t d);
  void Clear();

  // Number of points covered by the last Build (0 = no tree).
  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  // Merges the exact top-k neighbors of `q` (d values) among the covered
  // points into `heap`, a max-heap ordered by NeighborLess (see
  // PushNeighborHeap). The heap may arrive pre-seeded with candidates from
  // elsewhere (the dynamic index's unindexed tail); pruning stays exact.
  // `alive`, when non-null, is an n-element bitmap: points with alive[i]
  // == 0 are skipped as if absent (the dynamic index's tombstones) —
  // skipping only shrinks the candidate set, so pruning stays exact.
  void Search(const double* points, const double* q,
              const QueryOptions& options, std::vector<Neighbor>* heap,
              const uint8_t* alive = nullptr) const;

  // Appends every covered point whose Formula 1 distance to `q` is <= r
  // (ties INCLUDED — the admission-bound filter needs equidistant points,
  // whose (distance, slot) tie-break can still displace) to `out`, in
  // tree-traversal order. Same plane-pruning bound as Search, with the
  // same conservative epsilon, so a point exactly on the radius is never
  // pruned. `alive` filters like Search.
  void RangeSearch(const double* points, const double* q, double r,
                   std::vector<Neighbor>* out,
                   const uint8_t* alive = nullptr) const;

 private:
  struct Node {
    int axis = -1;          // split dimension
    double split = 0.0;     // split coordinate
    size_t begin = 0;       // leaf: range into order_
    size_t end = 0;
    int left = -1;          // children as indices into nodes_
    int right = -1;
    bool IsLeaf() const { return left < 0; }
  };

  static constexpr size_t kLeafSize = 16;

  int BuildRange(const double* points, size_t begin, size_t end, int depth);
  void SearchNode(int node_id, const double* points, const double* q,
                  const QueryOptions& options, std::vector<Neighbor>* heap,
                  const uint8_t* alive) const;
  void RangeNode(int node_id, const double* points, const double* q,
                 double r, std::vector<Neighbor>* out,
                 const uint8_t* alive) const;

  size_t n_ = 0;
  size_t d_ = 0;
  std::vector<size_t> order_;  // point ids, permuted by Build
  std::vector<Node> nodes_;
  int root_ = -1;
};

// NeighborIndex over a frozen table, tree-accelerated. Same contract and
// bit-identical results as BruteForceIndex; used for the large-n
// scalability experiments (SN with 100k tuples).
class KdTreeIndex final : public NeighborIndex {
 public:
  KdTreeIndex(const data::Table* table, std::vector<int> cols);

  std::vector<Neighbor> Query(const data::RowView& query,
                              const QueryOptions& options) const override;
  // Falls back to a full scan: a sorted list of *all* points cannot beat
  // O(n log n) anyway.
  std::vector<Neighbor> QueryAll(const data::RowView& query,
                                 size_t exclude) const override;
  size_t size() const override { return tree_.size(); }

 private:
  std::vector<int> cols_;
  std::vector<double> points_;  // row-major size() x cols_.size()
  FlatKdTree tree_;
};

// Picks KdTree for large tables, brute force otherwise.
std::unique_ptr<NeighborIndex> MakeIndex(const data::Table* table,
                                         std::vector<int> cols,
                                         size_t kdtree_threshold = 4096);

}  // namespace iim::neighbors

#endif  // IIM_NEIGHBORS_KDTREE_H_
