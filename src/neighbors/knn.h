// Nearest-neighbor search over a relation on an attribute subset F.
//
// NeighborIndex is the NN(t, F, l) primitive shared by IIM, kNN, kNNE,
// LOESS, ILLS and PMM. The default implementation is an exact brute-force
// scan (distances are cheap: |F| <= ~20); neighbors/kdtree.h provides a
// tree-accelerated drop-in for large n.

#ifndef IIM_NEIGHBORS_KNN_H_
#define IIM_NEIGHBORS_KNN_H_

#include <vector>

#include "data/table.h"

namespace iim::neighbors {

struct Neighbor {
  size_t index;     // row in the indexed table
  double distance;  // Formula 1 distance
};

// Search options: `exclude` removes one row from consideration (used when a
// validation tuple queries its own relation); `k` caps the result size.
struct QueryOptions {
  size_t k = 1;
  // Row index to exclude, or kNoExclusion.
  size_t exclude = kNoExclusion;
  static constexpr size_t kNoExclusion = static_cast<size_t>(-1);
};

class NeighborIndex {
 public:
  virtual ~NeighborIndex() = default;

  // k nearest rows to `query`, ascending by (distance, index). Returns fewer
  // than k results when the indexed table is small.
  virtual std::vector<Neighbor> Query(const data::RowView& query,
                                      const QueryOptions& options) const = 0;

  // All rows sorted ascending by (distance, index) — the full neighbor
  // order used by adaptive learning (every prefix is an NN(t, F, l) set).
  virtual std::vector<Neighbor> QueryAll(const data::RowView& query,
                                         size_t exclude) const = 0;

  virtual size_t size() const = 0;
};

// Exact brute-force index.
class BruteForceIndex final : public NeighborIndex {
 public:
  // Indexes `table` on attribute subset `cols` (kept by value). The table
  // must outlive the index.
  BruteForceIndex(const data::Table* table, std::vector<int> cols);

  std::vector<Neighbor> Query(const data::RowView& query,
                              const QueryOptions& options) const override;
  std::vector<Neighbor> QueryAll(const data::RowView& query,
                                 size_t exclude) const override;
  size_t size() const override { return table_->NumRows(); }

  const std::vector<int>& cols() const { return cols_; }

 private:
  const data::Table* table_;
  std::vector<int> cols_;
};

}  // namespace iim::neighbors

#endif  // IIM_NEIGHBORS_KNN_H_
