// Nearest-neighbor search over a relation on an attribute subset F.
//
// NeighborIndex is the NN(t, F, l) primitive shared by IIM, kNN, kNNE,
// LOESS, ILLS and PMM. The default implementation is an exact brute-force
// scan (distances are cheap: |F| <= ~20); neighbors/kdtree.h provides a
// tree-accelerated drop-in for large n. QueryMany fans a batch of queries
// out over a ThreadPool — this is what the parallel learning phase and
// ImputeBatch drive.

#ifndef IIM_NEIGHBORS_KNN_H_
#define IIM_NEIGHBORS_KNN_H_

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"
#include "data/table.h"

namespace iim::neighbors {

struct Neighbor {
  size_t index;     // row in the indexed table
  double distance;  // Formula 1 distance
};

// The one neighbor ordering every index uses: ascending (distance, index).
// Sharing it keeps brute force, the KD-tree and the dynamic index
// bit-for-bit interchangeable, including on distance ties.
inline bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

// Bounded top-k insert into a max-heap ordered by NeighborLess (the heap's
// front is the current worst kept neighbor). Shared by the KD-tree leaf
// scan and the dynamic index's tail scan so their merge semantics match.
inline void PushNeighborHeap(std::vector<Neighbor>* heap, size_t k,
                             const Neighbor& cand) {
  if (heap->size() < k) {
    heap->push_back(cand);
    std::push_heap(heap->begin(), heap->end(), NeighborLess);
  } else if (NeighborLess(cand, heap->front())) {
    std::pop_heap(heap->begin(), heap->end(), NeighborLess);
    heap->back() = cand;
    std::push_heap(heap->begin(), heap->end(), NeighborLess);
  }
}

// Search options: `exclude` removes one row from consideration (used when a
// validation tuple queries its own relation); `k` caps the result size.
struct QueryOptions {
  size_t k = 1;
  // Row index to exclude, or kNoExclusion.
  size_t exclude = kNoExclusion;
  static constexpr size_t kNoExclusion = static_cast<size_t>(-1);
};

// One entry of a QueryMany batch.
struct BatchQuery {
  data::RowView query;
  size_t exclude = QueryOptions::kNoExclusion;
};

class NeighborIndex {
 public:
  virtual ~NeighborIndex() = default;

  // k nearest rows to `query`, ascending by (distance, index). Returns fewer
  // than k results when the indexed table is small, and empty when k == 0.
  virtual std::vector<Neighbor> Query(const data::RowView& query,
                                      const QueryOptions& options) const = 0;

  // All rows sorted ascending by (distance, index) — the full neighbor
  // order used by adaptive learning (every prefix is an NN(t, F, l) set).
  virtual std::vector<Neighbor> QueryAll(const data::RowView& query,
                                         size_t exclude) const = 0;

  // Batched Query: result i answers batch[i]. Queries are independent, so
  // they fan out over `pool` (nullptr or a 1-thread pool runs serially);
  // the output order matches the batch order regardless of thread count.
  std::vector<std::vector<Neighbor>> QueryMany(
      const std::vector<BatchQuery>& batch, size_t k,
      ThreadPool* pool = nullptr) const;

  virtual size_t size() const = 0;
};

// Exact brute-force index. Gathers the F columns of every row into one
// contiguous n x |F| buffer at construction so a query streams dense
// memory instead of striding through the full table rows.
class BruteForceIndex final : public NeighborIndex {
 public:
  // Indexes `table` on attribute subset `cols` (kept by value). The table
  // is only read during construction — the index holds its own snapshot
  // of the gathered columns.
  BruteForceIndex(const data::Table* table, std::vector<int> cols);

  std::vector<Neighbor> Query(const data::RowView& query,
                              const QueryOptions& options) const override;
  std::vector<Neighbor> QueryAll(const data::RowView& query,
                                 size_t exclude) const override;
  // Snapshot size at construction, derived from the gathered point buffer
  // — NOT table_->NumRows(), which can grow after the index is built and
  // would send Scan reading past the end of points_.
  size_t size() const override {
    return cols_.empty() ? 0 : points_.size() / cols_.size();
  }

  const std::vector<int>& cols() const { return cols_; }

 private:
  // Distances from `query` to every non-excluded row, unordered.
  std::vector<Neighbor> Scan(const data::RowView& query,
                             size_t exclude) const;

  std::vector<int> cols_;
  std::vector<double> points_;  // row-major size() x cols_.size()
};

}  // namespace iim::neighbors

#endif  // IIM_NEIGHBORS_KNN_H_
