#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

namespace iim::cluster {

namespace {

double SquaredDist(const double* a, const double* b, size_t p) {
  double acc = 0.0;
  for (size_t i = 0; i < p; ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

// k-means++: first center uniform, each next center drawn proportionally to
// squared distance from the nearest chosen center.
linalg::Matrix SeedCenters(const linalg::Matrix& points, size_t k, Rng* rng) {
  size_t n = points.rows(), p = points.cols();
  linalg::Matrix centers(k, p);
  size_t first = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(n - 1)));
  centers.SetRow(0, points.Row(first));

  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  for (size_t c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      dist2[i] = std::min(
          dist2[i], SquaredDist(points.RowPtr(i), centers.RowPtr(c - 1), p));
    }
    double total = 0.0;
    for (double d : dist2) total += d;
    size_t chosen = 0;
    if (total > 0.0) {
      chosen = rng->Categorical(dist2);
    } else {
      chosen = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(n - 1)));
    }
    centers.SetRow(c, points.Row(chosen));
  }
  return centers;
}

}  // namespace

int NearestCenter(const linalg::Matrix& centers, const double* x) {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers.rows(); ++c) {
    double d = SquaredDist(centers.RowPtr(c), x, centers.cols());
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

Result<KMeansResult> KMeans(const linalg::Matrix& points,
                            const KMeansOptions& options, Rng* rng) {
  size_t n = points.rows(), p = points.cols();
  if (n == 0) return Status::InvalidArgument("KMeans: no points");
  size_t k = std::min(options.k, n);
  if (k == 0) return Status::InvalidArgument("KMeans: k must be positive");

  KMeansResult result;
  result.centers = SeedCenters(points, k, rng);
  result.assignments.assign(n, -1);

  for (int iter = 0; iter < options.max_iters; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      int c = NearestCenter(result.centers, points.RowPtr(i));
      if (c != result.assignments[i]) {
        result.assignments[i] = c;
        changed = true;
      }
    }
    // Update step.
    linalg::Matrix next(k, p);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = static_cast<size_t>(result.assignments[i]);
      ++counts[c];
      const double* row = points.RowPtr(i);
      for (size_t j = 0; j < p; ++j) next(c, j) += row[j];
    }
    double shift = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        size_t pick = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(n - 1)));
        next.SetRow(c, points.Row(pick));
      } else {
        for (size_t j = 0; j < p; ++j) {
          next(c, j) /= static_cast<double>(counts[c]);
        }
      }
      shift += SquaredDist(next.RowPtr(c), result.centers.RowPtr(c), p);
    }
    result.centers = std::move(next);
    if (!changed || std::sqrt(shift) < options.tol) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(result.assignments[i]);
    result.inertia += SquaredDist(points.RowPtr(i), result.centers.RowPtr(c),
                                  p);
  }
  return result;
}

}  // namespace iim::cluster
