// Fuzzy c-means (Bezdek): soft cluster memberships.
//
// Backbone of the IFC imputer (Nikfalazar et al.), which fills missing
// cells with membership-weighted centroid values and iterates.

#ifndef IIM_CLUSTER_FUZZY_CMEANS_H_
#define IIM_CLUSTER_FUZZY_CMEANS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace iim::cluster {

struct FuzzyCMeansOptions {
  size_t c = 3;           // number of clusters
  double fuzzifier = 2.0; // m > 1; larger = softer memberships
  int max_iters = 100;
  double tol = 1e-5;
};

struct FuzzyCMeansResult {
  linalg::Matrix centers;      // c x p
  linalg::Matrix memberships;  // n x c, rows sum to 1
  int iterations = 0;
};

Result<FuzzyCMeansResult> FuzzyCMeans(const linalg::Matrix& points,
                                      const FuzzyCMeansOptions& options,
                                      Rng* rng);

}  // namespace iim::cluster

#endif  // IIM_CLUSTER_FUZZY_CMEANS_H_
