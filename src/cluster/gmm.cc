#include "cluster/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "linalg/cholesky.h"

namespace iim::cluster {

namespace {

constexpr double kLog2Pi = 1.8378770664093454836;

std::vector<double> GatherDims(const linalg::Vector& v,
                               const std::vector<int>& dims) {
  std::vector<double> out;
  out.reserve(dims.size());
  for (int d : dims) out.push_back(v[static_cast<size_t>(d)]);
  return out;
}

linalg::Matrix GatherCov(const linalg::Matrix& cov,
                         const std::vector<int>& dims) {
  linalg::Matrix out(dims.size(), dims.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    for (size_t j = 0; j < dims.size(); ++j) {
      out(i, j) = cov(static_cast<size_t>(dims[i]),
                      static_cast<size_t>(dims[j]));
    }
  }
  return out;
}

}  // namespace

Result<double> MvnLogPdf(const std::vector<double>& x,
                         const linalg::Vector& mean,
                         const linalg::Matrix& cov) {
  size_t d = x.size();
  if (mean.size() != d || cov.rows() != d || cov.cols() != d) {
    return Status::InvalidArgument("MvnLogPdf: dimension mismatch");
  }
  linalg::Matrix l;
  linalg::Matrix work = cov;
  Status st = linalg::CholeskyFactor(work, &l);
  if (!st.ok()) {
    work.AddScaledIdentity(1e-6);
    RETURN_IF_ERROR(linalg::CholeskyFactor(work, &l));
  }
  double logdet = 0.0;
  for (size_t i = 0; i < d; ++i) logdet += std::log(l(i, i));
  logdet *= 2.0;
  // Solve L w = (x - mean); the quadratic form is |w|^2.
  linalg::Vector w(d);
  for (size_t i = 0; i < d; ++i) {
    double sum = x[i] - mean[i];
    for (size_t k = 0; k < i; ++k) sum -= l(i, k) * w[k];
    w[i] = sum / l(i, i);
  }
  double quad = 0.0;
  for (double v : w) quad += v * v;
  return -0.5 * (static_cast<double>(d) * kLog2Pi + logdet + quad);
}

Status GaussianMixture::Fit(const linalg::Matrix& points,
                            const GmmOptions& options, Rng* rng) {
  size_t n = points.rows(), p = points.cols();
  if (n == 0) return Status::InvalidArgument("GaussianMixture: no points");
  size_t k = std::min(options.components, n);

  // Initialize from k-means.
  KMeansOptions kopt;
  kopt.k = k;
  kopt.max_iters = 20;
  ASSIGN_OR_RETURN(KMeansResult init, KMeans(points, kopt, rng));

  components_.assign(k, GaussianComponent{});
  std::vector<size_t> counts(k, 0);
  for (int a : init.assignments) ++counts[static_cast<size_t>(a)];
  for (size_t c = 0; c < k; ++c) {
    components_[c].weight =
        std::max(1e-8, static_cast<double>(counts[c]) / n);
    components_[c].mean = init.centers.Row(c);
    components_[c].covariance = linalg::Matrix(p, p);
  }
  // Initial covariances: per-cluster scatter (+ ridge).
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(init.assignments[i]);
    const double* row = points.RowPtr(i);
    for (size_t a = 0; a < p; ++a) {
      for (size_t b = 0; b < p; ++b) {
        components_[c].covariance(a, b) +=
            (row[a] - components_[c].mean[a]) *
            (row[b] - components_[c].mean[b]);
      }
    }
  }
  for (size_t c = 0; c < k; ++c) {
    double denom = std::max<double>(1.0, static_cast<double>(counts[c]));
    components_[c].covariance.ScaleInPlace(1.0 / denom);
    components_[c].covariance.AddScaledIdentity(options.cov_ridge);
  }

  linalg::Matrix resp(n, k);
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iters; ++iter) {
    iterations_ = iter + 1;
    // E-step with log-sum-exp.
    double ll = 0.0;
    std::vector<double> logp(k);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> x = points.Row(i);
      double maxlog = -std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        ASSIGN_OR_RETURN(double lp, MvnLogPdf(x, components_[c].mean,
                                              components_[c].covariance));
        logp[c] = std::log(components_[c].weight) + lp;
        maxlog = std::max(maxlog, logp[c]);
      }
      double sum = 0.0;
      for (size_t c = 0; c < k; ++c) sum += std::exp(logp[c] - maxlog);
      ll += maxlog + std::log(sum);
      for (size_t c = 0; c < k; ++c) {
        resp(i, c) = std::exp(logp[c] - maxlog) / sum;
      }
    }
    // M-step.
    for (size_t c = 0; c < k; ++c) {
      double nc = 0.0;
      linalg::Vector mean(p, 0.0);
      for (size_t i = 0; i < n; ++i) {
        double r = resp(i, c);
        nc += r;
        const double* row = points.RowPtr(i);
        for (size_t a = 0; a < p; ++a) mean[a] += r * row[a];
      }
      nc = std::max(nc, 1e-10);
      for (double& v : mean) v /= nc;
      linalg::Matrix cov(p, p);
      for (size_t i = 0; i < n; ++i) {
        double r = resp(i, c);
        if (r < 1e-12) continue;
        const double* row = points.RowPtr(i);
        for (size_t a = 0; a < p; ++a) {
          for (size_t b = a; b < p; ++b) {
            cov(a, b) += r * (row[a] - mean[a]) * (row[b] - mean[b]);
          }
        }
      }
      cov.ScaleInPlace(1.0 / nc);
      for (size_t a = 0; a < p; ++a)
        for (size_t b = 0; b < a; ++b) cov(a, b) = cov(b, a);
      cov.AddScaledIdentity(options.cov_ridge);
      components_[c].weight = nc / static_cast<double>(n);
      components_[c].mean = std::move(mean);
      components_[c].covariance = std::move(cov);
    }
    final_log_likelihood_ = ll;
    if (std::fabs(ll - prev_ll) / static_cast<double>(n) < options.tol) break;
    prev_ll = ll;
  }
  return Status::OK();
}

Result<double> GaussianMixture::LogComponentDensity(
    const std::vector<double>& x, size_t comp,
    const std::vector<int>& dims) const {
  if (comp >= components_.size()) {
    return Status::OutOfRange("LogComponentDensity: bad component");
  }
  const GaussianComponent& g = components_[comp];
  if (dims.empty()) return MvnLogPdf(x, g.mean, g.covariance);
  return MvnLogPdf(x, GatherDims(g.mean, dims), GatherCov(g.covariance,
                                                          dims));
}

Result<std::vector<double>> GaussianMixture::Responsibilities(
    const std::vector<double>& x, const std::vector<int>& dims) const {
  size_t k = components_.size();
  if (k == 0) {
    return Status::FailedPrecondition("GaussianMixture: not fitted");
  }
  std::vector<double> logp(k);
  double maxlog = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < k; ++c) {
    ASSIGN_OR_RETURN(double lp, LogComponentDensity(x, c, dims));
    logp[c] = std::log(std::max(components_[c].weight, 1e-300)) + lp;
    maxlog = std::max(maxlog, logp[c]);
  }
  double sum = 0.0;
  for (size_t c = 0; c < k; ++c) sum += std::exp(logp[c] - maxlog);
  std::vector<double> out(k);
  for (size_t c = 0; c < k; ++c) out[c] = std::exp(logp[c] - maxlog) / sum;
  return out;
}

}  // namespace iim::cluster
