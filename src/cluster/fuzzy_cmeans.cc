#include "cluster/fuzzy_cmeans.h"

#include <cmath>

#include "cluster/kmeans.h"

namespace iim::cluster {

namespace {

double SquaredDist(const double* a, const double* b, size_t p) {
  double acc = 0.0;
  for (size_t i = 0; i < p; ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

Result<FuzzyCMeansResult> FuzzyCMeans(const linalg::Matrix& points,
                                      const FuzzyCMeansOptions& options,
                                      Rng* rng) {
  size_t n = points.rows(), p = points.cols();
  if (n == 0) return Status::InvalidArgument("FuzzyCMeans: no points");
  if (options.fuzzifier <= 1.0) {
    return Status::InvalidArgument("FuzzyCMeans: fuzzifier must be > 1");
  }
  size_t c = std::min(options.c, n);

  // Initialize centers with a quick k-means pass for stability.
  KMeansOptions kopt;
  kopt.k = c;
  kopt.max_iters = 10;
  ASSIGN_OR_RETURN(KMeansResult init, KMeans(points, kopt, rng));

  FuzzyCMeansResult result;
  result.centers = std::move(init.centers);
  result.memberships = linalg::Matrix(n, c);

  double exponent = 2.0 / (options.fuzzifier - 1.0);
  for (int iter = 0; iter < options.max_iters; ++iter) {
    result.iterations = iter + 1;
    // Membership update: u_ic = 1 / sum_j (d_ic / d_ij)^{2/(m-1)}.
    for (size_t i = 0; i < n; ++i) {
      // A point sitting exactly on a center gets a crisp membership.
      int exact = -1;
      for (size_t j = 0; j < c; ++j) {
        if (SquaredDist(points.RowPtr(i), result.centers.RowPtr(j), p) ==
            0.0) {
          exact = static_cast<int>(j);
          break;
        }
      }
      if (exact >= 0) {
        for (size_t j = 0; j < c; ++j) result.memberships(i, j) = 0.0;
        result.memberships(i, static_cast<size_t>(exact)) = 1.0;
        continue;
      }
      for (size_t j = 0; j < c; ++j) {
        double dij =
            SquaredDist(points.RowPtr(i), result.centers.RowPtr(j), p);
        double denom = 0.0;
        for (size_t l = 0; l < c; ++l) {
          double dil =
              SquaredDist(points.RowPtr(i), result.centers.RowPtr(l), p);
          denom += std::pow(dij / dil, exponent * 0.5);
        }
        result.memberships(i, j) = 1.0 / denom;
      }
    }
    // Center update: v_j = sum_i u_ij^m x_i / sum_i u_ij^m.
    linalg::Matrix next(c, p);
    std::vector<double> denom(c, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = points.RowPtr(i);
      for (size_t j = 0; j < c; ++j) {
        double um = std::pow(result.memberships(i, j), options.fuzzifier);
        denom[j] += um;
        for (size_t d = 0; d < p; ++d) next(j, d) += um * row[d];
      }
    }
    double shift = 0.0;
    for (size_t j = 0; j < c; ++j) {
      if (denom[j] > 0.0) {
        for (size_t d = 0; d < p; ++d) next(j, d) /= denom[j];
      } else {
        next.SetRow(j, result.centers.Row(j));
      }
      shift += SquaredDist(next.RowPtr(j), result.centers.RowPtr(j), p);
    }
    result.centers = std::move(next);
    if (std::sqrt(shift) < options.tol) break;
  }
  return result;
}

}  // namespace iim::cluster
