// Gaussian mixture model fitted with EM (full covariances).
//
// Used by the GMM imputer (Yan et al.): a missing attribute is imputed by
// the posterior-weighted conditional means E[Am | F] of the components.

#ifndef IIM_CLUSTER_GMM_H_
#define IIM_CLUSTER_GMM_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace iim::cluster {

struct GmmOptions {
  size_t components = 3;
  int max_iters = 100;
  double tol = 1e-5;          // stop when mean log-likelihood improves less
  double cov_ridge = 1e-6;    // added to covariance diagonals
};

struct GaussianComponent {
  double weight = 0.0;
  linalg::Vector mean;
  linalg::Matrix covariance;
};

class GaussianMixture {
 public:
  Status Fit(const linalg::Matrix& points, const GmmOptions& options,
             Rng* rng);

  size_t NumComponents() const { return components_.size(); }
  const GaussianComponent& component(size_t i) const {
    return components_[i];
  }

  // log N(x; mean, cov) restricted to dimension subset `dims`
  // (dims indexes into the fitted space). Empty dims = all dimensions.
  Result<double> LogComponentDensity(const std::vector<double>& x,
                                     size_t comp,
                                     const std::vector<int>& dims) const;

  // Posterior component responsibilities for an observation restricted to
  // `dims` (values aligned with dims). Empty dims = full vector.
  Result<std::vector<double>> Responsibilities(
      const std::vector<double>& x, const std::vector<int>& dims) const;

  double final_log_likelihood() const { return final_log_likelihood_; }
  int iterations() const { return iterations_; }

 private:
  std::vector<GaussianComponent> components_;
  double final_log_likelihood_ = 0.0;
  int iterations_ = 0;
};

// log N(x; mean, cov) for a dense Gaussian (helper shared with imputers).
Result<double> MvnLogPdf(const std::vector<double>& x,
                         const linalg::Vector& mean,
                         const linalg::Matrix& cov);

}  // namespace iim::cluster

#endif  // IIM_CLUSTER_GMM_H_
