// Lloyd's k-means with k-means++ seeding.
//
// Serves two roles: the clustering application of Table VII (Weka kmeans
// stand-in) and the initializer for fuzzy c-means / GMM.

#ifndef IIM_CLUSTER_KMEANS_H_
#define IIM_CLUSTER_KMEANS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace iim::cluster {

struct KMeansOptions {
  size_t k = 2;
  int max_iters = 100;
  double tol = 1e-6;  // stop when centers move less than this (L2)
};

struct KMeansResult {
  linalg::Matrix centers;           // k x p
  std::vector<int> assignments;     // n, cluster id per point
  double inertia = 0.0;             // sum of squared distances to centers
  int iterations = 0;
};

Result<KMeansResult> KMeans(const linalg::Matrix& points,
                            const KMeansOptions& options, Rng* rng);

// Index of the nearest center to `x` (plain Euclidean).
int NearestCenter(const linalg::Matrix& centers, const double* x);

}  // namespace iim::cluster

#endif  // IIM_CLUSTER_KMEANS_H_
