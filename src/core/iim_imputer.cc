#include "core/iim_imputer.h"

#include <cmath>

#include "common/stopwatch.h"

namespace iim::core {

Status IimImputer::FitImpl() {
  if (options_.k == 0) {
    return Status::InvalidArgument("IIM: k must be positive");
  }
  index_ = neighbors::MakeIndex(&table(), features());
  Stopwatch timer;
  if (options_.adaptive) {
    ASSIGN_OR_RETURN(models_,
                     IndividualModels::LearnAdaptive(
                         table(), target(), features(), *index_, options_,
                         &adaptive_stats_));
  } else {
    ASSIGN_OR_RETURN(models_, IndividualModels::Learn(table(), target(),
                                                      features(), *index_,
                                                      options_));
  }
  learning_seconds_ = timer.ElapsedSeconds();
  return Status::OK();
}

Result<std::vector<double>> IimImputer::Candidates(
    const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  neighbors::QueryOptions qopt;
  qopt.k = options_.k;
  std::vector<neighbors::Neighbor> nbrs = index_->Query(tuple, qopt);
  if (nbrs.empty()) return Status::Internal("IIM: no imputation neighbors");
  std::vector<double> x = FeatureVector(tuple);
  std::vector<double> candidates;
  candidates.reserve(nbrs.size());
  for (const auto& nb : nbrs) {
    // Formula 9: t_x^j[Am] = (1, t_x[F]) phi_j.
    candidates.push_back(models_.model(nb.index).Predict(x));
  }
  return candidates;
}

Result<double> IimImputer::ImputeOne(const data::RowView& tuple) const {
  ASSIGN_OR_RETURN(std::vector<double> candidates, Candidates(tuple));
  return CombineCandidates(candidates, options_.uniform_weights);
}

Result<ImputationDistribution> IimImputer::ImputeDistribution(
    const data::RowView& tuple) const {
  ASSIGN_OR_RETURN(std::vector<double> candidates, Candidates(tuple));
  size_t k = candidates.size();
  std::vector<double> weights(k, 1.0);
  if (!options_.uniform_weights && k > 1) {
    // Formula 11-12 weights; when all candidates agree the distances are
    // all zero and the distribution collapses to uniform (same value).
    std::vector<double> c(k, 0.0);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        c[i] += std::fabs(candidates[i] - candidates[j]);
      }
    }
    double max_c = 0.0;
    for (double v : c) max_c = std::max(max_c, v);
    if (max_c >= 1e-12) {
      for (size_t i = 0; i < k; ++i) {
        weights[i] = 1.0 / std::max(c[i], 1e-12);
      }
    }
  }
  return ImputationDistribution::Make(std::move(candidates),
                                      std::move(weights));
}

Result<double> CombineCandidates(const std::vector<double>& candidates,
                                 bool uniform) {
  if (candidates.empty()) {
    return Status::InvalidArgument("CombineCandidates: no candidates");
  }
  size_t k = candidates.size();
  if (uniform || k == 1) {
    double sum = 0.0;
    for (double c : candidates) sum += c;
    return sum / static_cast<double>(k);
  }
  // Formula 11: c_xi = sum_j |t_x^i - t_x^j|.
  std::vector<double> c(k, 0.0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      c[i] += std::fabs(candidates[i] - candidates[j]);
    }
  }
  // If every candidate agrees (all c_xi == 0), the aggregation is that
  // common value; guard tiny distances for numerical safety.
  double max_c = 0.0;
  for (double v : c) max_c = std::max(max_c, v);
  if (max_c < 1e-12) return candidates[0];

  // Formula 12: w_xi proportional to c_xi^{-1}.
  double denom = 0.0;
  for (double v : c) denom += 1.0 / std::max(v, 1e-12);
  double value = 0.0;
  for (size_t i = 0; i < k; ++i) {
    double w = (1.0 / std::max(c[i], 1e-12)) / denom;
    value += w * candidates[i];
  }
  return value;
}

}  // namespace iim::core
