#include "core/iim_imputer.h"

#include <cmath>

#include "common/stopwatch.h"

namespace iim::core {

Status IimImputer::FitImpl() {
  if (options_.k == 0) {
    return Status::InvalidArgument("IIM: k must be positive");
  }
  index_ = neighbors::MakeIndex(&table(), features());
  Stopwatch timer;
  if (options_.adaptive) {
    ASSIGN_OR_RETURN(models_,
                     IndividualModels::LearnAdaptive(
                         table(), target(), features(), *index_, options_,
                         &adaptive_stats_));
  } else {
    ASSIGN_OR_RETURN(models_, IndividualModels::Learn(table(), target(),
                                                      features(), *index_,
                                                      options_));
  }
  learning_seconds_ = timer.ElapsedSeconds();
  return Status::OK();
}

Result<std::vector<double>> IimImputer::Candidates(
    const data::RowView& tuple) const {
  RETURN_IF_ERROR(CheckReady(tuple));
  neighbors::QueryOptions qopt;
  qopt.k = options_.k;
  std::vector<neighbors::Neighbor> nbrs = index_->Query(tuple, qopt);
  if (nbrs.empty()) return Status::Internal("IIM: no imputation neighbors");
  std::vector<double> x = FeatureVector(tuple);
  std::vector<double> candidates;
  candidates.reserve(nbrs.size());
  for (const auto& nb : nbrs) {
    // Formula 9: t_x^j[Am] = (1, t_x[F]) phi_j.
    candidates.push_back(models_.model(nb.index).Predict(x));
  }
  return candidates;
}

Result<double> IimImputer::ImputeOne(const data::RowView& tuple) const {
  ASSIGN_OR_RETURN(std::vector<double> candidates, Candidates(tuple));
  return CombineCandidates(candidates, options_.uniform_weights);
}

std::vector<Result<double>> IimImputer::ImputeBatch(
    const std::vector<data::RowView>& rows) const {
  return baselines::ParallelImputeBatch(*this, rows, options_.threads);
}

Result<ImputationDistribution> IimImputer::ImputeDistribution(
    const data::RowView& tuple) const {
  ASSIGN_OR_RETURN(std::vector<double> candidates, Candidates(tuple));
  size_t k = candidates.size();
  std::vector<double> weights(k, 1.0);
  if (!options_.uniform_weights && k > 1) {
    // Formula 11-12 weights; when all candidates agree the distances are
    // all zero and the distribution collapses to uniform (same value).
    weights = ComputeCandidateVotes(candidates).weights;
  }
  return ImputationDistribution::Make(std::move(candidates),
                                      std::move(weights));
}

CandidateVotes ComputeCandidateVotes(const std::vector<double>& candidates) {
  size_t k = candidates.size();
  CandidateVotes votes;
  votes.weights.assign(k, 1.0);
  // Formula 11: c_xi = sum_j |t_x^i - t_x^j|.
  std::vector<double> c(k, 0.0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      c[i] += std::fabs(candidates[i] - candidates[j]);
    }
  }
  double max_c = 0.0;
  for (double v : c) max_c = std::max(max_c, v);
  if (max_c < 1e-12) {
    votes.degenerate = true;
    return votes;
  }
  // Formula 12: w_xi proportional to c_xi^{-1} (unnormalized here; the
  // guard keeps exact-duplicate candidates from dividing by zero).
  for (size_t i = 0; i < k; ++i) {
    votes.weights[i] = 1.0 / std::max(c[i], 1e-12);
  }
  return votes;
}

Result<double> CombineCandidates(const std::vector<double>& candidates,
                                 bool uniform) {
  if (candidates.empty()) {
    return Status::InvalidArgument("CombineCandidates: no candidates");
  }
  size_t k = candidates.size();
  if (uniform || k == 1) {
    double sum = 0.0;
    for (double c : candidates) sum += c;
    return sum / static_cast<double>(k);
  }
  CandidateVotes votes = ComputeCandidateVotes(candidates);
  // If every candidate agrees, the aggregation is that common value.
  if (votes.degenerate) return candidates[0];
  double denom = 0.0;
  for (double w : votes.weights) denom += w;
  double value = 0.0;
  for (size_t i = 0; i < k; ++i) {
    value += (votes.weights[i] / denom) * candidates[i];
  }
  return value;
}

}  // namespace iim::core
