#include "core/imputation_distribution.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace iim::core {

Result<ImputationDistribution> ImputationDistribution::Make(
    std::vector<double> candidates, std::vector<double> weights) {
  if (candidates.empty() || candidates.size() != weights.size()) {
    return Status::InvalidArgument(
        "ImputationDistribution: candidates/weights size mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument(
          "ImputationDistribution: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument(
        "ImputationDistribution: weights sum to zero");
  }
  for (double& w : weights) w /= total;

  // Keep candidates sorted (weights aligned) so quantiles are a scan.
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return candidates[a] < candidates[b];
  });
  std::vector<double> sorted_c(candidates.size()), sorted_w(weights.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_c[i] = candidates[order[i]];
    sorted_w[i] = weights[order[i]];
  }
  return ImputationDistribution(std::move(sorted_c), std::move(sorted_w));
}

double ImputationDistribution::Mean() const {
  double acc = 0.0;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    acc += weights_[i] * candidates_[i];
  }
  return acc;
}

double ImputationDistribution::Variance() const {
  double mean = Mean();
  double acc = 0.0;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    acc += weights_[i] * (candidates_[i] - mean) * (candidates_[i] - mean);
  }
  return acc;
}

double ImputationDistribution::StdDev() const {
  return std::sqrt(Variance());
}

double ImputationDistribution::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  double cum = 0.0;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    cum += weights_[i];
    if (cum >= q - 1e-12) return candidates_[i];
  }
  return candidates_.back();
}

double ImputationDistribution::MassWithin(double lo, double hi) const {
  double mass = 0.0;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i] >= lo && candidates_[i] <= hi) mass += weights_[i];
  }
  return mass;
}

}  // namespace iim::core
