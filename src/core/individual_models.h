// Learning phase of IIM: one ridge-regression model per complete tuple.
//
// Learn()        — Algorithm 1 (fixed l for every tuple).
// LearnAdaptive()— Algorithm 3 (per-tuple l chosen by validating candidate
//                  models against the complete tuples they would impute),
//                  with stepping (Section V-A2) and the incremental U/V
//                  computation of Proposition 3.

#ifndef IIM_CORE_INDIVIDUAL_MODELS_H_
#define IIM_CORE_INDIVIDUAL_MODELS_H_

#include <vector>

#include "common/result.h"
#include "core/iim_options.h"
#include "data/feature_block.h"
#include "data/table.h"
#include "neighbors/knn.h"
#include "regress/linear_model.h"

namespace iim::core {

// Diagnostics from adaptive learning (Figures 11-13 report these).
struct AdaptiveStats {
  // Chosen l per tuple.
  std::vector<size_t> chosen_ell;
  // Candidate l values that were evaluated.
  std::vector<size_t> candidate_ells;
  // Total validation cost of the chosen models.
  double total_cost = 0.0;
  // Seconds spent determining the models: candidate-model computation +
  // validation, *excluding* nearest-neighbor retrieval. This matches the
  // paper's Figure 12 accounting, where the NN lists are precomputed once
  // and reused for every candidate l. With options.threads > 1 the
  // per-tuple times are summed across workers, so this is aggregate busy
  // time (CPU-seconds), not wall-clock.
  double determination_seconds = 0.0;
};

// The set Phi of individual regression parameters, one per tuple of r.
//
// Both learners gather (F, Am) into a contiguous data::FeatureBlock once
// and fan the independent per-tuple work out over options.threads workers.
// The resulting models are bit-identical for every thread count (fixed
// block partitioning; per-block reductions merged in block order).
class IndividualModels {
 public:
  // Algorithm 1. `index` must be built over `r` on `features` (it is used
  // for NN(t_i, F, l)); l == 1 applies the single-neighbor rule of
  // Section III-A2. l is clamped to n.
  static Result<IndividualModels> Learn(
      const data::Table& r, int target, const std::vector<int>& features,
      const neighbors::NeighborIndex& index, const IimOptions& options);

  // Algorithm 3. Evaluates candidate l values 1, 1+h, ... (capped by
  // options.max_ell) for each tuple and keeps the model minimizing the
  // validation cost. `stats` is optional.
  static Result<IndividualModels> LearnAdaptive(
      const data::Table& r, int target, const std::vector<int>& features,
      const neighbors::NeighborIndex& index, const IimOptions& options,
      AdaptiveStats* stats);

  size_t size() const { return models_.size(); }
  const regress::LinearModel& model(size_t i) const { return models_[i]; }
  const std::vector<regress::LinearModel>& models() const { return models_; }

 private:
  std::vector<regress::LinearModel> models_;
};

// The candidate l sequence {1, 1+h, 1+2h, ...} clamped to [1, max_ell].
std::vector<size_t> CandidateEllValues(size_t n, size_t step_h,
                                       size_t max_ell);

// Validation fan-out cap shared by the batch learner and the streaming
// order-maintenance core: with very large imputation k the validation cost
// grows as n * |L| * k while the selection quality plateaus, so more than
// 10 judges per model add cost but no signal.
constexpr size_t kMaxValidationK = 10;

// Fits the model over the first `ell` tuples of `order` from scratch (a
// plain ridge over the gathered prefix; ell == 1 applies the
// single-neighbor rule of Section III-A2). Shared by Learn/LearnAdaptive
// and the streaming adaptive path's orphan fallback, which must reproduce
// this exact summation to stay bit-identical to a batch refit.
Result<regress::LinearModel> FitOverPrefix(const data::FeatureBlock& fb,
                                           const std::vector<size_t>& order,
                                           size_t ell, double alpha);

}  // namespace iim::core

#endif  // IIM_CORE_INDIVIDUAL_MODELS_H_
