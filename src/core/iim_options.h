// Configuration of IIM's learning and imputation phases.

#ifndef IIM_CORE_IIM_OPTIONS_H_
#define IIM_CORE_IIM_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace iim::core {

struct IimOptions {
  // --- Imputation phase (Algorithm 2) ---
  // Number of imputation neighbors k whose individual models produce
  // candidates.
  size_t k = 5;
  // Proposition-1 ablation: aggregate candidates with uniform weights
  // 1/|Tx| instead of the mutual-vote weights of Formulas 11-12.
  bool uniform_weights = false;

  // --- Learning phase (Algorithms 1 and 3) ---
  // Fixed number of learning neighbors l (used when adaptive == false).
  // The paper's Propositions: l = 1 reduces IIM to kNN (+uniform weights),
  // l = n reduces it to GLR.
  size_t ell = 10;
  // Adaptive per-tuple selection of l by validation (Algorithm 3).
  bool adaptive = false;
  // Stepping h (Section V-A2): candidate l values are 1, 1+h, 1+2h, ...
  size_t step_h = 1;
  // Cap on candidate l values (0 = n). Bounds adaptive learning cost on
  // large relations; Figure 11 shows the optimum sits far below n.
  size_t max_ell = 0;
  // Incremental U/V maintenance (Proposition 3). false recomputes each
  // candidate model from scratch — only useful to reproduce the
  // straightforward-vs-incremental comparison of Figures 12-13.
  bool incremental = true;
  // Adaptive validation set: 0 = every complete tuple (the paper's
  // Algorithm 3); otherwise a uniform sample of this size.
  size_t validation_sample = 0;
  // How many nearest neighbors each validator judges (Algorithm 3 Line 4).
  // 0 = use k. Raising it above k reduces selection noise (more judges per
  // tuple) at proportional determination cost.
  size_t validation_k = 0;
  uint64_t seed = 7;  // for validation sampling only

  // Ridge regularization alpha of Formula 5.
  double alpha = 1e-6;

  // --- Streaming (stream::OnlineIim; the batch imputer ignores these) ---
  // Sliding window: keep only the most recent `window_size` live tuples.
  // Once an ingest pushes the live count past the window, the oldest live
  // tuple is evicted (learning orders repaired, accumulators down-dated or
  // restreamed, index tombstoned). 0 = unbounded growth.
  size_t window_size = 0;
  // Evictions repair an affected tuple's U/V accumulator in place with a
  // rank-1 ridge down-date when the conditioning guard allows it
  // (IncrementalRidge::RemoveRow); false forces the restream fallback —
  // slower per eviction, but bitwise identical to a batch refit on the
  // surviving window.
  bool downdate = true;
  // Prune the per-arrival insertion scan with each live order's admission
  // bound (its worst kept distance; infinite below capacity): arrivals
  // find candidate orders by one radius query against the streaming index
  // at the exact global max bound, then filter each candidate by its own
  // bound, so per-arrival maintenance cost scales with the AFFECTED
  // orders instead of n. Results are bit-identical at both settings —
  // false keeps the O(n) full scan as the differential baseline (see
  // stream::OrderCore).
  bool admission_bound = true;
  // Build replacement KD-trees for the streaming index on a background
  // thread and install them with a brief writer-lock swap, bounding
  // per-arrival ingest latency (results are identical either way; see
  // stream::DynamicIndex::Options::background_rebuild). false rebuilds
  // inside the ingest under the writer lock — the tail-latency baseline.
  bool background_rebuild = true;
  // Streaming index tuning, forwarded to stream::DynamicIndex::Options
  // when nonzero (0 keeps that option's default). Results are identical
  // at every setting — these move only WHEN trees are rebuilt and
  // tombstones compacted. Tests and benches lower them so small-n
  // schedules still cross KD-tree rebuilds and compactions.
  size_t index_kdtree_threshold = 0;
  size_t index_min_rebuild_tail = 0;
  size_t index_min_compact_tombstones = 0;
  // Shard count for stream::ShardedOnlineIim: arrivals are routed to
  // `shards` independent engines by a pluggable partitioner and
  // imputation queries scatter to every shard, merging per-shard
  // candidates into a global top-k that is bit-identical to an unsharded
  // engine over the union of the data. Plain OnlineIim and the batch
  // imputer ignore it. 1 = unsharded.
  size_t shards = 1;

  // --- Durability (stream engines; the batch imputer ignores these) ---
  // Directory for snapshots and the write-ahead arrival log. Empty
  // disables persistence. When set, Create() first recovers from the
  // newest valid snapshot plus the log tail (falling back to a cold
  // engine if the directory is empty or unusable), then logs every
  // explicit Ingest/Evict before applying it.
  std::string persist_dir;
  // Trigger a background snapshot once this many logged ops accumulated
  // since the last checkpoint (0 = only explicit SaveSnapshot calls and
  // service shutdown). Serialization happens synchronously on the engine
  // thread; the file write never blocks ingest.
  size_t snapshot_every = 0;
  // Write-ahead log fsync policy: 0 syncs only at rotation/shutdown (a
  // crash can lose the OS-buffered tail); N additionally fsyncs every
  // Nth record (1 = synchronous WAL, nothing acknowledged is lost).
  size_t wal_fsync_every = 0;
  // Snapshots retained on disk (older ones and their fully-covered log
  // segments are garbage-collected; min 1).
  size_t keep_snapshots = 2;

  // --- Robustness (stream engines with a persist_dir) ---
  // A failed write-ahead append is retried up to this many extra times
  // before the engine gives up on durability for the op (0 = fail fast).
  // Backoff between attempts doubles from wal_retry_base up to
  // wal_retry_max seconds.
  size_t wal_retry_attempts = 0;
  double wal_retry_base = 0.001;
  double wal_retry_max = 0.1;
  // What a degraded engine (durable-write retries exhausted; see
  // stream/health.h) does with further mutations. Imputations keep
  // serving under every policy.
  enum class DegradedIngest {
    // Reject ingests/evictions with kUnavailable until durability is
    // explicitly recovered. Nothing acknowledged is ever lost.
    kReject,
    // Apply them WITHOUT logging and acknowledge with an OK status whose
    // message flags the hole ("accepted non-durably"); a crash before
    // RecoverDurability() loses exactly those ops.
    kAcceptNonDurable,
  };
  DegradedIngest degraded_ingest = DegradedIngest::kReject;
  // kAcceptNonDurable only: unlogged ops tolerated before the engine
  // escalates kDegraded -> kReadOnly (0 = never escalate).
  size_t max_nondurable_ops = 0;

  // --- Quality monitoring (stream engines; see stream/quality.h) ---
  // Masking-one-out holdout rate: the fraction of arriving tuples whose
  // observed cells are (deterministically, by arrival-number hash)
  // sampled for a prequential quality probe — one monitored cell is held
  // out and imputed by IIM plus the mean/kNN/GLR challengers against the
  // pre-arrival window, and the per-column error estimates decay toward
  // the newest errors. 0 disables monitoring entirely (no monitor state,
  // no per-ingest challenger maintenance).
  double moo_sample_rate = 0.0;
  // Exponential-decay weight of the newest holdout error in the
  // per-column estimates: est <- (1 - moo_decay) * est + moo_decay * err.
  double moo_decay = 0.05;
  // Challenger fan-ins: kNN neighbors and IIM learning neighbors used by
  // the probe imputers (0 = inherit k / ell).
  size_t moo_knn = 0;
  size_t moo_ell = 0;
  // Routing guards: a column needs this many holdouts per method before
  // its champion may switch, and a challenger must beat the incumbent's
  // decayed squared error by this fraction (hysteresis) to take over.
  size_t moo_min_samples = 32;
  double moo_margin = 0.1;
  // What the engines do with the estimates.
  enum class QualityRouting {
    // Maintain estimates only; every impute request is served by IIM.
    // Imputed values are bit-identical to a quality-disabled engine.
    kObserveOnly,
    // Route each impute request to the target column's current champion
    // method; blend all methods MIB-style (inverse decayed-squared-error
    // weights) while a freshly switched champion is still settling.
    kAutoRoute,
  };
  QualityRouting quality_routing = QualityRouting::kObserveOnly;

  // --- Time-based eviction (stream engines) ---
  // Column holding each tuple's event timestamp (any unit, must be
  // monotone-comparable). Enables EvictOlderThan(cutoff) sweeps — "keep
  // the last 24h" windows — on top of the count-based window_size.
  // -1 = no timestamp column (EvictOlderThan is FailedPrecondition;
  // EvictWhere works regardless).
  int timestamp_column = -1;

  // --- Execution ---
  // Worker threads for learning and batched imputation (0 = all hardware
  // threads). Results are bit-identical for every setting: the parallel
  // loops partition work into fixed blocks independent of the thread
  // count and merge per-block results in block order.
  size_t threads = 1;
};

}  // namespace iim::core

#endif  // IIM_CORE_IIM_OPTIONS_H_
