#include "core/individual_models.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "regress/incremental_ridge.h"
#include "regress/ridge.h"

namespace iim::core {

namespace {

// Learning-neighbor order for tuple i: the tuple itself first (distance 0,
// as in Example 2 where T_1 = {t1, t2, t3, t4}), then the next `need - 1`
// tuples by ascending (distance, index). Bounding the query by `need`
// keeps the learning phase O(n * query(need)) instead of O(n^2 log n).
std::vector<size_t> LearningOrder(const neighbors::NeighborIndex& index,
                                  const data::Table& r, size_t i,
                                  size_t need) {
  std::vector<size_t> order;
  order.reserve(need);
  order.push_back(i);
  if (need > 1) {
    neighbors::QueryOptions qopt;
    qopt.k = need - 1;
    qopt.exclude = i;
    for (const auto& nb : index.Query(r.Row(i), qopt)) {
      order.push_back(nb.index);
    }
  }
  return order;
}

// Fits the model over the first `ell` tuples of `order` (from scratch).
Result<regress::LinearModel> FitOverPrefix(
    const data::Table& r, int target, const std::vector<int>& features,
    const std::vector<size_t>& order, size_t ell, double alpha) {
  size_t q = features.size();
  if (ell == 1) {
    // Single-neighbor rule (Section III-A2): a constant model predicting
    // the tuple's own value.
    return regress::LinearModel::Constant(
        r.At(order[0], static_cast<size_t>(target)), q);
  }
  linalg::Matrix x(ell, q);
  linalg::Vector y(ell);
  for (size_t row = 0; row < ell; ++row) {
    data::RowView t = r.Row(order[row]);
    for (size_t j = 0; j < q; ++j) {
      x(row, j) = t[static_cast<size_t>(features[j])];
    }
    y[row] = t[static_cast<size_t>(target)];
  }
  regress::RidgeOptions ropt;
  ropt.alpha = alpha;
  return regress::FitRidge(x, y, ropt);
}

}  // namespace

std::vector<size_t> CandidateEllValues(size_t n, size_t step_h,
                                       size_t max_ell) {
  if (step_h == 0) step_h = 1;
  size_t cap = (max_ell == 0) ? n : std::min(max_ell, n);
  std::vector<size_t> ells;
  for (size_t ell = 1; ell <= cap; ell += step_h) ells.push_back(ell);
  return ells;
}

Result<IndividualModels> IndividualModels::Learn(
    const data::Table& r, int target, const std::vector<int>& features,
    const neighbors::NeighborIndex& index, const IimOptions& options) {
  if (r.empty()) return Status::InvalidArgument("Learn: empty relation");
  size_t n = r.NumRows();
  size_t ell = std::clamp<size_t>(options.ell, 1, n);

  IndividualModels phi;
  phi.models_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> order = LearningOrder(index, r, i, ell);
    ASSIGN_OR_RETURN(
        regress::LinearModel model,
        FitOverPrefix(r, target, features, order, ell, options.alpha));
    phi.models_.push_back(std::move(model));
  }
  return phi;
}

Result<IndividualModels> IndividualModels::LearnAdaptive(
    const data::Table& r, int target, const std::vector<int>& features,
    const neighbors::NeighborIndex& index, const IimOptions& options,
    AdaptiveStats* stats) {
  if (r.empty()) {
    return Status::InvalidArgument("LearnAdaptive: empty relation");
  }
  size_t n = r.NumRows();
  size_t q = features.size();
  std::vector<size_t> ells =
      CandidateEllValues(n, options.step_h, options.max_ell);

  // Validation tuples (all of r by default, or a sample).
  std::vector<size_t> validators(n);
  for (size_t i = 0; i < n; ++i) validators[i] = i;
  if (options.validation_sample > 0 && options.validation_sample < n) {
    Rng rng(options.seed);
    validators =
        rng.SampleWithoutReplacement(n, options.validation_sample);
  }

  // Reverse-neighbor lists: validated_by[i] holds the validation tuples t_j
  // that would use t_i's model (t_i in NN(t_j, F, k), self excluded as in
  // Example 4). The fan-out is capped: with very large imputation k the
  // validation cost grows as n * |L| * k while the selection quality
  // plateaus, so k > 10 judges add cost but no signal.
  constexpr size_t kMaxValidationK = 10;
  std::vector<std::vector<size_t>> validated_by(n);
  neighbors::QueryOptions vopt;
  size_t vk = options.validation_k > 0 ? options.validation_k : options.k;
  vopt.k = std::clamp<size_t>(vk, 1, kMaxValidationK);
  for (size_t j : validators) {
    vopt.exclude = j;
    for (const auto& nb : index.Query(r.Row(j), vopt)) {
      validated_by[nb.index].push_back(j);
    }
  }

  // Pre-gather validator feature vectors and truths.
  std::vector<std::vector<double>> vfeat(n);
  std::vector<double> vtruth(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    vfeat[j] = r.Row(j).Gather(features);
    vtruth[j] = r.At(j, static_cast<size_t>(target));
  }

  IndividualModels phi;
  phi.models_.resize(n);
  if (stats != nullptr) {
    stats->chosen_ell.assign(n, 0);
    stats->candidate_ells = ells;
    stats->total_cost = 0.0;
  }

  // Tuples nobody validates fall back to the globally best l (by summed
  // cost over validated tuples), accumulated as we go.
  std::vector<double> global_cost(ells.size(), 0.0);
  std::vector<size_t> orphan;

  Stopwatch determination_timer;
  double determination_seconds = 0.0;
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> order = LearningOrder(index, r, i, ells.back());
    const std::vector<size_t>& judges = validated_by[i];

    determination_timer.Restart();
    regress::IncrementalRidge accum(q);
    size_t consumed = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_ell = ells.front();
    regress::LinearModel best_model;

    for (size_t e = 0; e < ells.size(); ++e) {
      size_t ell = ells[e];
      regress::LinearModel model;
      if (options.incremental) {
        // Proposition 3: fold in only the h new neighbors.
        while (consumed < ell) {
          data::RowView t = r.Row(order[consumed]);
          accum.AddRow(t.Gather(features),
                       t[static_cast<size_t>(target)]);
          ++consumed;
        }
        if (ell == 1) {
          model = regress::LinearModel::Constant(
              r.At(order[0], static_cast<size_t>(target)), q);
        } else {
          ASSIGN_OR_RETURN(model, accum.Solve(options.alpha));
        }
      } else {
        // Straightforward variant (Figures 12-13 baseline): rebuild the
        // design from scratch for every candidate l.
        ASSIGN_OR_RETURN(model, FitOverPrefix(r, target, features, order,
                                              ell, options.alpha));
      }

      double cost = 0.0;
      for (size_t j : judges) {
        double err = vtruth[j] - model.Predict(vfeat[j]);
        cost += err * err;
      }
      global_cost[e] += cost;
      if (!judges.empty() && cost < best_cost) {
        best_cost = cost;
        best_ell = ell;
        best_model = model;
      }
    }

    determination_seconds += determination_timer.ElapsedSeconds();

    if (judges.empty()) {
      orphan.push_back(i);
    } else {
      phi.models_[i] = std::move(best_model);
      if (stats != nullptr) {
        stats->chosen_ell[i] = best_ell;
        stats->total_cost += best_cost;
      }
    }
  }
  if (stats != nullptr) {
    stats->determination_seconds = determination_seconds;
  }

  if (!orphan.empty()) {
    size_t best_e = static_cast<size_t>(
        std::min_element(global_cost.begin(), global_cost.end()) -
        global_cost.begin());
    size_t fallback_ell = ells[best_e];
    for (size_t i : orphan) {
      std::vector<size_t> order = LearningOrder(index, r, i, fallback_ell);
      ASSIGN_OR_RETURN(phi.models_[i],
                       FitOverPrefix(r, target, features, order,
                                     fallback_ell, options.alpha));
      if (stats != nullptr) stats->chosen_ell[i] = fallback_ell;
    }
  }
  return phi;
}

}  // namespace iim::core
