#include "core/individual_models.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "data/feature_block.h"
#include "regress/incremental_ridge.h"
#include "regress/ridge.h"

namespace iim::core {

namespace {

// Tuples per ParallelFor block. One tuple's work (a neighbor query plus
// one or more ridge fits) dwarfs the scheduling cost, so small blocks keep
// the load balanced; the partition is fixed by this constant and n alone,
// which is what makes the per-block reductions thread-count independent.
constexpr size_t kTupleGrain = 16;

// Learning-neighbor order for tuple i: the tuple itself first (distance 0,
// as in Example 2 where T_1 = {t1, t2, t3, t4}), then the next `need - 1`
// tuples by ascending (distance, index). Bounding the query by `need`
// keeps the learning phase O(n * query(need)) instead of O(n^2 log n).
std::vector<size_t> LearningOrder(const neighbors::NeighborIndex& index,
                                  const data::Table& r, size_t i,
                                  size_t need) {
  std::vector<size_t> order;
  order.reserve(need);
  order.push_back(i);
  if (need > 1) {
    neighbors::QueryOptions qopt;
    qopt.k = need - 1;
    qopt.exclude = i;
    for (const auto& nb : index.Query(r.Row(i), qopt)) {
      order.push_back(nb.index);
    }
  }
  return order;
}

// First error of a per-block status array, in block order (deterministic
// regardless of which thread hit its error first).
Status FirstError(const std::vector<Status>& block_status) {
  for (const Status& st : block_status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace

// Fits the model over the first `ell` tuples of `order` (from scratch),
// reading the gathered features from the contiguous block.
Result<regress::LinearModel> FitOverPrefix(const data::FeatureBlock& fb,
                                           const std::vector<size_t>& order,
                                           size_t ell, double alpha) {
  size_t q = fb.num_features();
  if (ell == 1) {
    // Single-neighbor rule (Section III-A2): a constant model predicting
    // the tuple's own value.
    return regress::LinearModel::Constant(fb.Target(order[0]), q);
  }
  linalg::Matrix x(ell, q);
  linalg::Vector y(ell);
  for (size_t row = 0; row < ell; ++row) {
    const double* f = fb.Features(order[row]);
    for (size_t j = 0; j < q; ++j) x(row, j) = f[j];
    y[row] = fb.Target(order[row]);
  }
  regress::RidgeOptions ropt;
  ropt.alpha = alpha;
  return regress::FitRidge(x, y, ropt);
}

std::vector<size_t> CandidateEllValues(size_t n, size_t step_h,
                                       size_t max_ell) {
  if (step_h == 0) step_h = 1;
  size_t cap = (max_ell == 0) ? n : std::min(max_ell, n);
  std::vector<size_t> ells;
  for (size_t ell = 1; ell <= cap; ell += step_h) ells.push_back(ell);
  // The cap must stay reachable even when the stride steps over it
  // ((cap - 1) % h != 0): l = n is the GLR limit of Proposition 2, and
  // max_ell is the budget the caller actually asked to consider.
  if (!ells.empty() && ells.back() != cap) ells.push_back(cap);
  return ells;
}

Result<IndividualModels> IndividualModels::Learn(
    const data::Table& r, int target, const std::vector<int>& features,
    const neighbors::NeighborIndex& index, const IimOptions& options) {
  if (r.empty()) return Status::InvalidArgument("Learn: empty relation");
  size_t n = r.NumRows();
  size_t ell = std::clamp<size_t>(options.ell, 1, n);
  data::FeatureBlock fb = data::FeatureBlock::Build(r, target, features);

  IndividualModels phi;
  phi.models_.resize(n);
  ThreadPool pool(options.threads);
  std::vector<Status> block_status(ThreadPool::NumBlocks(n, kTupleGrain));
  pool.ParallelFor(n, kTupleGrain, [&](size_t begin, size_t end) {
    size_t block = begin / kTupleGrain;
    for (size_t i = begin; i < end; ++i) {
      std::vector<size_t> order = LearningOrder(index, r, i, ell);
      Result<regress::LinearModel> model =
          FitOverPrefix(fb, order, ell, options.alpha);
      if (!model.ok()) {
        block_status[block] = model.status();
        return;
      }
      phi.models_[i] = std::move(model).value();
    }
  });
  RETURN_IF_ERROR(FirstError(block_status));
  return phi;
}

Result<IndividualModels> IndividualModels::LearnAdaptive(
    const data::Table& r, int target, const std::vector<int>& features,
    const neighbors::NeighborIndex& index, const IimOptions& options,
    AdaptiveStats* stats) {
  if (r.empty()) {
    return Status::InvalidArgument("LearnAdaptive: empty relation");
  }
  size_t n = r.NumRows();
  size_t q = features.size();
  std::vector<size_t> ells =
      CandidateEllValues(n, options.step_h, options.max_ell);
  ThreadPool pool(options.threads);

  // Validation tuples (all of r by default, or a sample).
  std::vector<size_t> validators(n);
  for (size_t i = 0; i < n; ++i) validators[i] = i;
  if (options.validation_sample > 0 && options.validation_sample < n) {
    Rng rng(options.seed);
    validators =
        rng.SampleWithoutReplacement(n, options.validation_sample);
  }

  // Reverse-neighbor lists: validated_by[i] holds the validation tuples t_j
  // that would use t_i's model (t_i in NN(t_j, F, k), self excluded as in
  // Example 4). The fan-out is capped: with very large imputation k the
  // validation cost grows as n * |L| * k while the selection quality
  // plateaus, so k > 10 judges add cost but no signal. The n queries are
  // independent and fan out over the pool; the merge below runs serially
  // in validator order so the lists are identical for any thread count.
  std::vector<std::vector<size_t>> validated_by(n);
  size_t vk = options.validation_k > 0 ? options.validation_k : options.k;
  vk = std::clamp<size_t>(vk, 1, kMaxValidationK);
  std::vector<neighbors::BatchQuery> vbatch;
  vbatch.reserve(validators.size());
  for (size_t j : validators) {
    vbatch.push_back(neighbors::BatchQuery{r.Row(j), j});
  }
  std::vector<std::vector<neighbors::Neighbor>> vneighbors =
      index.QueryMany(vbatch, vk, &pool);
  for (size_t v = 0; v < validators.size(); ++v) {
    for (const auto& nb : vneighbors[v]) {
      validated_by[nb.index].push_back(validators[v]);
    }
  }
  vneighbors.clear();
  vneighbors.shrink_to_fit();

  // Contiguous validator features/truths (and FitOverPrefix inputs).
  data::FeatureBlock fb = data::FeatureBlock::Build(r, target, features);

  IndividualModels phi;
  phi.models_.resize(n);
  if (stats != nullptr) {
    stats->chosen_ell.assign(n, 0);
    stats->candidate_ells = ells;
    stats->total_cost = 0.0;
  }

  // Per-block partials, reduced in block order after the loop so the
  // result is independent of the thread count: candidate costs summed
  // over all tuples (the orphan fallback criterion), the orphan tuples
  // themselves, the chosen-model cost total, and determination time.
  size_t num_blocks = ThreadPool::NumBlocks(n, kTupleGrain);
  std::vector<Status> block_status(num_blocks);
  std::vector<std::vector<double>> block_cost(
      num_blocks, std::vector<double>(ells.size(), 0.0));
  std::vector<std::vector<size_t>> block_orphans(num_blocks);
  std::vector<double> block_chosen_cost(num_blocks, 0.0);
  std::vector<double> block_seconds(num_blocks, 0.0);

  pool.ParallelFor(n, kTupleGrain, [&](size_t begin, size_t end) {
    size_t block = begin / kTupleGrain;
    Stopwatch determination_timer;
    for (size_t i = begin; i < end; ++i) {
      std::vector<size_t> order = LearningOrder(index, r, i, ells.back());
      const std::vector<size_t>& judges = validated_by[i];

      determination_timer.Restart();
      regress::IncrementalRidge accum(q);
      size_t consumed = 0;
      double best_cost = std::numeric_limits<double>::infinity();
      size_t best_ell = ells.front();
      regress::LinearModel best_model;

      for (size_t e = 0; e < ells.size(); ++e) {
        size_t ell = ells[e];
        regress::LinearModel model;
        if (options.incremental) {
          // Proposition 3: fold in only the h new neighbors.
          while (consumed < ell) {
            accum.AddRow(fb.Features(order[consumed]),
                         fb.Target(order[consumed]));
            ++consumed;
          }
          if (ell == 1) {
            model = regress::LinearModel::Constant(fb.Target(order[0]), q);
          } else {
            Result<regress::LinearModel> solved = accum.Solve(options.alpha);
            if (!solved.ok()) {
              block_status[block] = solved.status();
              return;
            }
            model = std::move(solved).value();
          }
        } else {
          // Straightforward variant (Figures 12-13 baseline): rebuild the
          // design from scratch for every candidate l.
          Result<regress::LinearModel> fit =
              FitOverPrefix(fb, order, ell, options.alpha);
          if (!fit.ok()) {
            block_status[block] = fit.status();
            return;
          }
          model = std::move(fit).value();
        }

        double cost = 0.0;
        for (size_t j : judges) {
          double err = fb.Target(j) - model.Predict(fb.Features(j), q);
          cost += err * err;
        }
        block_cost[block][e] += cost;
        if (!judges.empty() && cost < best_cost) {
          best_cost = cost;
          best_ell = ell;
          best_model = model;
        }
      }

      block_seconds[block] += determination_timer.ElapsedSeconds();

      if (judges.empty()) {
        block_orphans[block].push_back(i);
      } else {
        phi.models_[i] = std::move(best_model);
        if (stats != nullptr) {
          stats->chosen_ell[i] = best_ell;
          block_chosen_cost[block] += best_cost;
        }
      }
    }
  });
  RETURN_IF_ERROR(FirstError(block_status));

  // Tuples nobody validates fall back to the globally best l (by summed
  // cost over validated tuples).
  std::vector<double> global_cost(ells.size(), 0.0);
  std::vector<size_t> orphan;
  double determination_seconds = 0.0;
  for (size_t b = 0; b < num_blocks; ++b) {
    for (size_t e = 0; e < ells.size(); ++e) {
      global_cost[e] += block_cost[b][e];
    }
    orphan.insert(orphan.end(), block_orphans[b].begin(),
                  block_orphans[b].end());
    determination_seconds += block_seconds[b];
    if (stats != nullptr) stats->total_cost += block_chosen_cost[b];
  }
  if (stats != nullptr) {
    stats->determination_seconds = determination_seconds;
  }

  if (!orphan.empty()) {
    size_t best_e = static_cast<size_t>(
        std::min_element(global_cost.begin(), global_cost.end()) -
        global_cost.begin());
    size_t fallback_ell = ells[best_e];
    std::vector<Status> fallback_status(
        ThreadPool::NumBlocks(orphan.size(), kTupleGrain));
    pool.ParallelFor(orphan.size(), kTupleGrain,
                     [&](size_t begin, size_t end) {
      size_t block = begin / kTupleGrain;
      for (size_t o = begin; o < end; ++o) {
        size_t i = orphan[o];
        std::vector<size_t> order =
            LearningOrder(index, r, i, fallback_ell);
        Result<regress::LinearModel> fit =
            FitOverPrefix(fb, order, fallback_ell, options.alpha);
        if (!fit.ok()) {
          fallback_status[block] = fit.status();
          return;
        }
        phi.models_[i] = std::move(fit).value();
        if (stats != nullptr) stats->chosen_ell[i] = fallback_ell;
      }
    });
    RETURN_IF_ERROR(FirstError(fallback_status));
  }
  return phi;
}

}  // namespace iim::core
