// IIM: Imputation via Individual Models (the paper's contribution).
//
// Fit()      — learning phase: individual models for every complete tuple
//              (Algorithm 1, or Algorithm 3 when options.adaptive).
// ImputeOne()— imputation phase (Algorithm 2): find the k imputation
//              neighbors of t_x, collect the candidates suggested by their
//              individual models (Formula 9), and aggregate them with the
//              mutual-vote weights of Formulas 10-12.

#ifndef IIM_CORE_IIM_IMPUTER_H_
#define IIM_CORE_IIM_IMPUTER_H_

#include <memory>
#include <vector>

#include "baselines/imputer.h"
#include "core/iim_options.h"
#include "core/imputation_distribution.h"
#include "core/individual_models.h"
#include "neighbors/kdtree.h"

namespace iim::core {

class IimImputer final : public baselines::ImputerBase {
 public:
  explicit IimImputer(const IimOptions& options = {}) : options_(options) {}

  std::string Name() const override { return "IIM"; }
  Result<double> ImputeOne(const data::RowView& tuple) const override;

  // Parallel Algorithm 2 over many incomplete tuples: the per-tuple work
  // (neighbor query, Formula 9 candidates, Formula 10-12 aggregation) is
  // independent, so it fans out over options.threads workers. Results are
  // bit-identical to calling ImputeOne per row, in row order.
  std::vector<Result<double>> ImputeBatch(
      const std::vector<data::RowView>& rows) const override;

  // Candidates t_x^j[Am] suggested by the k imputation neighbors' models
  // (exposed for tests and the quickstart walk-through).
  Result<std::vector<double>> Candidates(const data::RowView& tuple) const;

  // Multiple-imputation variant (the paper's Section VII future work):
  // the full candidate distribution with the Formula 11-12 weights.
  // Its Mean() equals ImputeOne()'s value (up to uniform_weights).
  Result<ImputationDistribution> ImputeDistribution(
      const data::RowView& tuple) const;

  const IndividualModels& models() const { return models_; }
  const AdaptiveStats& adaptive_stats() const { return adaptive_stats_; }
  // Wall-clock seconds spent in the learning phase of the last Fit.
  double learning_seconds() const { return learning_seconds_; }

 protected:
  Status FitImpl() override;

 private:
  IimOptions options_;
  std::unique_ptr<neighbors::NeighborIndex> index_;
  IndividualModels models_;
  AdaptiveStats adaptive_stats_;
  double learning_seconds_ = 0.0;
};

// Formulas 10-12: aggregate candidates by letting them vote for each other
// (candidates close to the others get larger weights). `uniform` switches
// to the plain average of Proposition 1. Empty input is an error.
Result<double> CombineCandidates(const std::vector<double>& candidates,
                                 bool uniform = false);

// Formula 11-12 mutual-vote weights, shared by CombineCandidates and
// ImputeDistribution: weights[i] = 1 / max(c_xi, 1e-12) with
// c_xi = sum_j |cand_i - cand_j|. When every candidate agrees (all c_xi
// below 1e-12) the weights degenerate to uniform ones and `degenerate` is
// set — callers treat that as "the common value wins exactly".
struct CandidateVotes {
  std::vector<double> weights;
  bool degenerate = false;
};
CandidateVotes ComputeCandidateVotes(const std::vector<double>& candidates);

}  // namespace iim::core

#endif  // IIM_CORE_IIM_IMPUTER_H_
