// Multiple-imputation support — the paper's Section VII future work:
// "answer queries directly over multiple imputation candidates suggested
// by different individual models, rather than determining exactly one
// imputation."
//
// ImputationDistribution carries the k candidates produced by the
// imputation neighbors' individual models together with their mutual-vote
// weights (Formulas 11-12), so downstream consumers can propagate
// imputation uncertainty instead of a point estimate.

#ifndef IIM_CORE_IMPUTATION_DISTRIBUTION_H_
#define IIM_CORE_IMPUTATION_DISTRIBUTION_H_

#include <vector>

#include "common/result.h"

namespace iim::core {

class ImputationDistribution {
 public:
  // Candidates and weights must be the same nonempty size; weights are
  // normalized internally (they need not sum to 1 on input).
  static Result<ImputationDistribution> Make(std::vector<double> candidates,
                                             std::vector<double> weights);

  size_t size() const { return candidates_.size(); }
  const std::vector<double>& candidates() const { return candidates_; }
  const std::vector<double>& weights() const { return weights_; }

  // Weighted mean — identical to the single imputation of Formula 10.
  double Mean() const;
  // Weighted variance around Mean(); 0 when all candidates agree.
  double Variance() const;
  double StdDev() const;

  // Weighted q-quantile (0 <= q <= 1) of the candidate distribution:
  // the smallest candidate whose cumulative weight reaches q.
  double Quantile(double q) const;

  // Probability mass of candidates inside [lo, hi] — the paper's
  // "queries over imputation candidates": e.g. the confidence that the
  // missing value lies in a predicate's range.
  double MassWithin(double lo, double hi) const;

 private:
  ImputationDistribution(std::vector<double> candidates,
                         std::vector<double> weights)
      : candidates_(std::move(candidates)), weights_(std::move(weights)) {}

  std::vector<double> candidates_;
  std::vector<double> weights_;  // normalized, aligned with candidates_
};

}  // namespace iim::core

#endif  // IIM_CORE_IMPUTATION_DISTRIBUTION_H_
