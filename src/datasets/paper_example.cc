#include "datasets/paper_example.h"

namespace iim::datasets {

data::Table Figure1Relation() {
  data::Table t(data::Schema::Default(2));
  // Values from Figure 1 of the paper.
  (void)t.AppendRow({0.0, 5.8});   // t1
  (void)t.AppendRow({0.8, 4.6});   // t2
  (void)t.AppendRow({1.9, 3.8});   // t3
  (void)t.AppendRow({2.9, 3.2});   // t4
  (void)t.AppendRow({6.8, 3.0});   // t5
  (void)t.AppendRow({7.5, 4.1});   // t6
  (void)t.AppendRow({8.2, 4.8});   // t7
  (void)t.AppendRow({9.0, 5.5});   // t8
  return t;
}

}  // namespace iim::datasets
