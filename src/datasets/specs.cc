#include "datasets/specs.h"

#include <algorithm>
#include <cctype>

namespace iim::datasets {

DatasetSpec Asf() {
  DatasetSpec s;
  s.name = "ASF";
  s.n = 1500;
  s.m = 6;
  s.regimes = 4;
  s.exogenous = 2;
  s.divergence = 0.9;   // "no clear global regression"
  s.noise = 0.12;       // low noise but wide spacing: local models beat
  s.box_halfwidth = 3.0;  // value-copying (the Figure 1 geometry)
  s.center_spread = 6.0;
  s.value_scale = 4.0;
  return s;
}

DatasetSpec Ccs() {
  DatasetSpec s;
  s.name = "CCS";
  s.n = 1000;
  s.m = 6;
  s.regimes = 5;
  s.exogenous = 2;
  s.divergence = 0.55;
  s.noise = 0.3;
  s.box_halfwidth = 3.0;
  s.center_spread = 8.0;
  s.value_scale = 3.0;
  return s;
}

DatasetSpec Ccpp() {
  DatasetSpec s;
  s.name = "CCPP";
  s.n = 10000;
  s.m = 5;
  s.regimes = 2;
  s.exogenous = 2;
  s.divergence = 0.12;  // nearly one global model
  s.noise = 0.35;
  s.box_halfwidth = 3.0;
  s.center_spread = 6.0;
  s.value_scale = 2.0;
  return s;
}

DatasetSpec Sn() {
  DatasetSpec s;
  s.name = "SN";
  s.n = 100000;
  s.m = 2;
  s.regimes = 12;       // piecewise "streets": global R^2 collapses
  s.exogenous = 1;
  s.divergence = 1.0;
  s.noise = 0.05;
  s.box_halfwidth = 1.0;
  s.center_spread = 20.0;
  s.value_scale = 1.0;
  return s;
}

DatasetSpec Phase() {
  DatasetSpec s;
  s.name = "PHASE";
  s.n = 10000;
  s.m = 4;
  s.regimes = 1;        // a clear global regression (three-phase power)
  s.exogenous = 1;
  s.divergence = 0.0;
  s.noise = 0.3;
  s.box_halfwidth = 5.0;
  s.center_spread = 4.0;
  s.value_scale = 2.0;
  return s;
}

DatasetSpec Ca() {
  DatasetSpec s;
  s.name = "CA";
  s.n = 20000;
  s.m = 9;
  s.regimes = 2;
  s.exogenous = 5;      // high-dimensional support: serious sparsity
  s.informative_exogenous = 2;  // 3 pure-noise dims starve kNN of signal
  s.divergence = 0.06;  // but a good global model (R^2_H ~ 0.9)
  s.noise = 0.2;
  s.box_halfwidth = 4.0;
  s.center_spread = 5.0;
  s.value_scale = 0.5;
  return s;
}

DatasetSpec Da() {
  DatasetSpec s;
  s.name = "DA";
  s.n = 7000;
  s.m = 6;
  s.regimes = 6;
  s.exogenous = 2;
  s.divergence = 0.5;
  s.noise = 0.35;
  s.box_halfwidth = 3.5;
  s.center_spread = 9.0;
  s.value_scale = 5.0;
  return s;
}

DatasetSpec Mam() {
  DatasetSpec s;
  s.name = "MAM";
  s.n = 1000;
  s.m = 5;
  s.regimes = 4;
  s.exogenous = 2;
  s.divergence = 0.6;
  s.noise = 1.4;          // classes overlap: F1 lands near the paper's ~0.82
  s.box_halfwidth = 2.5;
  s.center_spread = 4.0;
  s.value_scale = 1.0;
  s.num_classes = 2;
  s.missing_rate = 0.03;  // ~3% of tuples lose one value ("real" missing)
  return s;
}

DatasetSpec Hep() {
  DatasetSpec s;
  s.name = "HEP";
  s.n = 200;
  s.m = 19;
  s.regimes = 4;
  s.exogenous = 6;
  s.divergence = 0.5;
  s.noise = 1.6;          // same overlap treatment as MAM
  s.box_halfwidth = 2.5;
  s.center_spread = 3.0;
  s.value_scale = 1.0;
  s.num_classes = 2;
  s.missing_rate = 0.02;
  return s;
}

std::vector<DatasetSpec> AllSpecs() {
  return {Asf(), Ccs(), Ccpp(), Sn(), Phase(), Ca(), Da(), Mam(), Hep()};
}

std::optional<DatasetSpec> SpecByName(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (const DatasetSpec& spec : AllSpecs()) {
    if (spec.name == upper) return spec;
  }
  return std::nullopt;
}

}  // namespace iim::datasets
