// Synthetic dataset generation.
//
// The paper evaluates on UCI/KEEL/Siemens datasets that are not available
// offline, so each is replaced by a generator parameterized directly on the
// properties the paper's analysis depends on (Table IV + the measured
// R^2_S / R^2_H): tuple count, attribute count, number of latent linear
// regimes ("streets" in Figure 1), how far regime models diverge
// (heterogeneity), support spread and noise (sparsity), class labels, and
// embedded-missing rate. See DESIGN.md section 4 for the mapping.
//
// Generative model per tuple:
//   1. draw a regime c with the regime's weight;
//   2. draw `exogenous` base coordinates uniformly in the regime's box;
//   3. remaining attributes = regime-specific affine map of the base
//      coordinates + Gaussian noise.
// With divergence 0 all regimes share one affine map (clear global
// regression, e.g. PHASE); with large divergence the maps disagree
// (heterogeneity, e.g. ASF and the extreme SN).

#ifndef IIM_DATASETS_GENERATOR_H_
#define IIM_DATASETS_GENERATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/missing_mask.h"
#include "data/table.h"

namespace iim::datasets {

struct DatasetSpec {
  std::string name;
  size_t n = 1000;          // tuples
  size_t m = 4;             // attributes
  size_t regimes = 3;       // latent local-linear regimes
  size_t exogenous = 2;     // base coordinates (rest are affine responses)
  // How many exogenous dims actually drive the responses (0 = all). The
  // remaining exogenous dims are pure noise coordinates: they dilute
  // neighbor distances without carrying signal — the curse-of-
  // dimensionality sparsity of the CA dataset.
  size_t informative_exogenous = 0;
  double divergence = 0.5;  // 0 = one global model; 1 = unrelated regimes
  double noise = 0.1;       // response noise stddev (pre-scale units)
  double box_halfwidth = 2.0;   // regime support half-width
  double center_spread = 10.0;  // regime centers drawn in [0, spread]
  double value_scale = 1.0;     // multiplies all attribute values
  size_t num_classes = 0;       // >0: tuples get class labels
  double missing_rate = 0.0;    // >0: MCAR cells removed (real missingness)
};

struct GeneratedDataset {
  data::Table table;
  // Non-empty only when spec.missing_rate > 0; truth recorded as NaN to
  // model "real-world missing values without ground truth".
  data::MissingMask mask;
  // Latent regime per tuple (useful as clustering ground truth).
  std::vector<int> regime_of_row;
};

// Deterministic for a given (spec, seed).
Result<GeneratedDataset> Generate(const DatasetSpec& spec, uint64_t seed);

}  // namespace iim::datasets

#endif  // IIM_DATASETS_GENERATOR_H_
