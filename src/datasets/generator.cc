#include "datasets/generator.h"

#include <cmath>
#include <limits>

namespace iim::datasets {

namespace {

struct Regime {
  double weight = 1.0;
  std::vector<double> center;      // exogenous box center
  std::vector<double> halfwidth;   // exogenous box half-widths
  // Affine map per endogenous attribute: intercept + slopes (exogenous).
  std::vector<std::vector<double>> coeffs;
};

}  // namespace

Result<GeneratedDataset> Generate(const DatasetSpec& spec, uint64_t seed) {
  if (spec.n == 0 || spec.m == 0) {
    return Status::InvalidArgument("Generate: empty dataset spec");
  }
  if (spec.exogenous == 0 || spec.exogenous > spec.m) {
    return Status::InvalidArgument("Generate: exogenous out of range");
  }
  if (spec.regimes == 0) {
    return Status::InvalidArgument("Generate: need at least one regime");
  }

  Rng rng(seed);
  size_t b = spec.exogenous;
  size_t e = spec.m - b;
  size_t informative = spec.informative_exogenous == 0
                           ? b
                           : std::min(spec.informative_exogenous, b);

  // Global affine map shared by all regimes, perturbed per regime by
  // `divergence`. Slopes in [-2, 2]: strong enough that sparse neighbor
  // gaps translate into real value gaps.
  std::vector<std::vector<double>> global_coeffs(e);
  for (size_t j = 0; j < e; ++j) {
    global_coeffs[j].resize(b + 1);
    global_coeffs[j][0] = rng.Uniform(-3.0, 3.0);
    for (size_t d = 0; d < b; ++d) {
      global_coeffs[j][d + 1] =
          d < informative ? rng.Uniform(-2.0, 2.0) : 0.0;
    }
  }

  std::vector<Regime> regimes(spec.regimes);
  for (auto& reg : regimes) {
    reg.weight = rng.Uniform(0.5, 1.5);
    reg.center.resize(b);
    reg.halfwidth.resize(b);
    for (size_t d = 0; d < b; ++d) {
      reg.center[d] = rng.Uniform(0.0, spec.center_spread);
      reg.halfwidth[d] = spec.box_halfwidth * rng.Uniform(0.6, 1.4);
    }
    reg.coeffs.resize(e);
    for (size_t j = 0; j < e; ++j) {
      reg.coeffs[j].resize(b + 1);
      // Blend between the global map and a fresh random map.
      reg.coeffs[j][0] = global_coeffs[j][0] +
                         spec.divergence * rng.Uniform(-4.0, 4.0);
      for (size_t d = 0; d < b; ++d) {
        reg.coeffs[j][d + 1] =
            d < informative ? global_coeffs[j][d + 1] +
                                  spec.divergence * rng.Uniform(-2.5, 2.5)
                            : 0.0;
      }
    }
  }

  std::vector<double> weights;
  weights.reserve(regimes.size());
  for (const auto& reg : regimes) weights.push_back(reg.weight);

  GeneratedDataset out;
  out.table = data::Table(data::Schema::Default(spec.m), spec.n);
  out.regime_of_row.resize(spec.n);
  std::vector<int> labels;
  if (spec.num_classes > 0) labels.resize(spec.n);

  for (size_t i = 0; i < spec.n; ++i) {
    size_t c = rng.Categorical(weights);
    const Regime& reg = regimes[c];
    out.regime_of_row[i] = static_cast<int>(c);
    if (spec.num_classes > 0) {
      labels[i] = static_cast<int>(c % spec.num_classes);
    }
    std::vector<double> base(b);
    for (size_t d = 0; d < b; ++d) {
      base[d] = reg.center[d] +
                rng.Uniform(-reg.halfwidth[d], reg.halfwidth[d]);
    }
    for (size_t d = 0; d < b; ++d) {
      out.table.Set(i, d, spec.value_scale * base[d]);
    }
    for (size_t j = 0; j < e; ++j) {
      double v = reg.coeffs[j][0];
      for (size_t d = 0; d < b; ++d) v += reg.coeffs[j][d + 1] * base[d];
      v += rng.Gaussian(0.0, spec.noise);
      out.table.Set(i, b + j, spec.value_scale * v);
    }
  }
  if (spec.num_classes > 0) out.table.SetLabels(std::move(labels));

  out.mask = data::MissingMask(spec.n, spec.m);
  if (spec.missing_rate > 0.0) {
    constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
    for (size_t i = 0; i < spec.n; ++i) {
      // At most one missing attribute per tuple keeps at least some
      // complete attributes available, mirroring the paper's protocol.
      if (!rng.Bernoulli(spec.missing_rate * static_cast<double>(spec.m))) {
        continue;
      }
      int col = static_cast<int>(
          rng.UniformInt(0, static_cast<int64_t>(spec.m - 1)));
      out.mask.Mark(i, col, kNan);
      out.table.Set(i, static_cast<size_t>(col), kNan);
    }
  }
  return out;
}

}  // namespace iim::datasets
