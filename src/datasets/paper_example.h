// The running example of the paper (Figure 1 / Examples 1-6): eight
// complete check-in tuples t1..t8 over (A1, A2) and the incomplete tuple
// tx with tx[A1] = 5 and tx[A2] missing (ground truth 1.8). Used by golden
// tests and the quickstart example.

#ifndef IIM_DATASETS_PAPER_EXAMPLE_H_
#define IIM_DATASETS_PAPER_EXAMPLE_H_

#include "data/table.h"

namespace iim::datasets {

// t1..t8 of Figure 1.
data::Table Figure1Relation();

// tx[A1] = 5.
inline constexpr double kFigure1QueryA1 = 5.0;
// Ground truth of tx[A2].
inline constexpr double kFigure1TruthA2 = 1.8;

}  // namespace iim::datasets

#endif  // IIM_DATASETS_PAPER_EXAMPLE_H_
