// The nine evaluation datasets of Table IV, as generator specs tuned to
// the paper-reported properties (shape, sparsity R^2_S, heterogeneity
// R^2_H, labels, embedded missingness). See DESIGN.md section 4.

#ifndef IIM_DATASETS_SPECS_H_
#define IIM_DATASETS_SPECS_H_

#include <optional>
#include <string>
#include <vector>

#include "datasets/generator.h"

namespace iim::datasets {

DatasetSpec Asf();    // UCI Airfoil Self-Noise: heterogeneous, 1.5k x 6
DatasetSpec Ccs();    // UCI Concrete Strength: moderate, 1k x 6
DatasetSpec Ccpp();   // UCI Power Plant: near-global regression, 10k x 5
DatasetSpec Sn();     // UCI 2-attribute, 100k: extreme heterogeneity
DatasetSpec Phase();  // Siemens three-phase power: clean global, 10k x 4
DatasetSpec Ca();     // KEEL California: sparse high-dim, 20k x 9
DatasetSpec Da();     // KEEL: moderate, 7k x 6
DatasetSpec Mam();    // KEEL Mammographic: labeled + real missing, 1k x 5
DatasetSpec Hep();    // KEEL Hepatitis: labeled + real missing, 200 x 19

// All nine, in the order of Table IV.
std::vector<DatasetSpec> AllSpecs();

// Lookup by (case-insensitive) name.
std::optional<DatasetSpec> SpecByName(const std::string& name);

}  // namespace iim::datasets

#endif  // IIM_DATASETS_SPECS_H_
