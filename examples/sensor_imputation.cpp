// Sensor-network imputation scenario (the paper's motivating setting:
// "unreliable sensor reading, collection and transmission").
//
// A deployment of sensors in several rooms reports (position, temperature,
// humidity, power). Rooms behave like the paper's "streets": readings
// within a room follow one local linear relation, rooms differ. Readings
// are lost in transmission bursts (clustered missing values — Figure 8's
// hard case). The example compares IIM's adaptive learning against kNN
// and the global regression and prints per-method RMS.
//
//   ./examples/sensor_imputation

#include <cstdio>

#include "baselines/registry.h"
#include "core/iim_imputer.h"
#include "datasets/generator.h"
#include "eval/experiment.h"
#include "eval/report.h"

int main() {
  // Six rooms, 1200 readings over 5 correlated channels.
  iim::datasets::DatasetSpec spec;
  spec.name = "sensors";
  spec.n = 1200;
  spec.m = 5;
  spec.regimes = 6;        // rooms
  spec.exogenous = 2;      // position coordinates
  spec.divergence = 0.8;   // each room has its own thermal behaviour
  spec.noise = 0.1;
  spec.box_halfwidth = 2.5;
  spec.center_spread = 9.0;
  auto gen = iim::datasets::Generate(spec, /*seed=*/2024);
  if (!gen.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 gen.status().ToString().c_str());
    return 1;
  }

  std::printf("Sensor deployment: %zu readings x %zu channels, %zu rooms\n",
              gen.value().table.NumRows(), gen.value().table.NumCols(),
              spec.regimes);
  std::printf("Failure model: transmission bursts knock out clusters of 4 "
              "nearby readings\n\n");

  iim::eval::ExperimentConfig config;
  config.inject.tuple_count = 120;
  config.inject.cluster_size = 4;  // bursts, not isolated losses
  config.seed = 7;

  std::vector<iim::eval::Method> methods;
  methods.push_back({"IIM", []() {
    iim::core::IimOptions opt;
    opt.k = 5;
    opt.adaptive = true;     // rooms need different l: adapt per tuple
    opt.max_ell = 80;
    opt.step_h = 2;
    opt.alpha = 1.0;
    return std::unique_ptr<iim::baselines::Imputer>(
        std::make_unique<iim::core::IimImputer>(opt));
  }});
  for (const std::string& name : {"kNN", "GLR", "LOESS", "Mean"}) {
    methods.push_back({name, [name]() {
      iim::baselines::BaselineOptions opt;
      opt.k = 5;
      return std::move(iim::baselines::MakeBaseline(name, opt).value());
    }});
  }

  auto res = iim::eval::RunComparison(gen.value().table, config, methods);
  if (!res.ok()) {
    std::fprintf(stderr, "run: %s\n", res.status().ToString().c_str());
    return 1;
  }

  iim::eval::TablePrinter table({"Method", "RMS", "Fit time", "Impute time"});
  for (const auto& m : res.value().methods) {
    table.AddRow({m.name, iim::eval::FormatMetric(m.rms, 3),
                  iim::eval::FormatSeconds(m.fit_seconds),
                  iim::eval::FormatSeconds(m.impute_seconds)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nWhy IIM: bursts remove whole neighborhoods, so kNN's nearest\n"
      "complete readings sit in other rooms; IIM uses their *models*,\n"
      "which extrapolate correctly into the lost region.\n");
  return 0;
}
