// Imputation as a preprocessing step for classification (the Table VII
// application): a medical-records-like dataset (MAM stand-in) carries
// real missing values with no ground truth. We compare the downstream
// 5-fold cross-validated F1 of a kNN classifier when (a) classifying with
// the missing values left in place, (b) discarding incomplete records,
// and (c) imputing with IIM / kNN / Mean first.
//
//   ./examples/classification_pipeline

#include <cstdio>

#include "apps/cross_validation.h"
#include "baselines/registry.h"
#include "core/iim_imputer.h"
#include "datasets/specs.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace {

double F1Of(const iim::data::Table& dataset) {
  iim::apps::CvOptions cv;
  cv.folds = 5;
  cv.knn_k = 5;
  return iim::apps::CrossValidatedF1(dataset, cv).value_or(0.0);
}

}  // namespace

int main() {
  auto spec = iim::datasets::Mam();
  auto gen = iim::datasets::Generate(spec, /*seed=*/99);
  if (!gen.ok()) return 1;
  const iim::data::Table& records = gen.value().table;
  const iim::data::MissingMask& mask = gen.value().mask;

  std::printf("Patient records: %zu tuples x %zu attributes, 2 classes\n",
              records.NumRows(), records.NumCols());
  std::printf("Real missing cells (no ground truth): %zu\n\n",
              mask.CountMissing());

  iim::eval::TablePrinter table({"Pipeline", "5-fold macro-F1"});

  // (a) Classify with NaNs in place (the classifier skips missing dims).
  table.AddRow({"no imputation (NaNs kept)",
                iim::eval::FormatMetric(F1Of(records), 3)});

  // (b) Discard incomplete records entirely.
  iim::data::Table complete_only = records.TakeRows(mask.CompleteRows());
  table.AddRow({"discard incomplete tuples",
                iim::eval::FormatMetric(F1Of(complete_only), 3)});

  // (c) Impute first, then classify.
  iim::data::Table r = records.TakeRows(mask.CompleteRows());
  auto run_with = [&](const std::string& label,
                      std::unique_ptr<iim::baselines::Imputer> imputer) {
    iim::data::Table imputed = records;
    auto res = iim::eval::ImputeAll(r, records, mask, imputer.get(),
                                    /*num_features=*/0, &imputed);
    if (!res.ok()) {
      table.AddRow({label, "-"});
      return;
    }
    table.AddRow({label, iim::eval::FormatMetric(F1Of(imputed), 3)});
  };

  iim::core::IimOptions iim_opt;
  iim_opt.k = 5;
  iim_opt.adaptive = true;
  iim_opt.max_ell = 80;
  iim_opt.step_h = 2;
  iim_opt.alpha = 1.0;
  run_with("impute with IIM (adaptive)",
           std::make_unique<iim::core::IimImputer>(iim_opt));

  iim::baselines::BaselineOptions base_opt;
  base_opt.k = 5;
  run_with("impute with kNN",
           std::move(iim::baselines::MakeBaseline("kNN", base_opt).value()));
  run_with("impute with Mean",
           std::move(iim::baselines::MakeBaseline("Mean", base_opt).value()));

  std::printf("%s", table.ToString().c_str());
  std::printf("\nImputing recovers the signal the classifier loses when\n"
              "attributes are missing; better imputations -> better F1.\n");
  return 0;
}
