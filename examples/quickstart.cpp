// Quickstart: the paper's Figure 1 running example, end to end.
//
// Eight check-in tuples t1..t8 over (A1, A2) form two "streets" with
// opposite slopes. The incomplete tuple tx has A1 = 5 and A2 missing
// (ground truth 1.8). kNN copies neighbor values and misses badly; the
// global regression can't fit both streets; IIM learns an individual
// model per tuple and nails it.
//
//   ./examples/quickstart

#include <cstdio>
#include <limits>

#include "baselines/glr_imputer.h"
#include "baselines/knn_imputer.h"
#include "core/iim_imputer.h"
#include "datasets/paper_example.h"

int main() {
  using iim::datasets::kFigure1QueryA1;
  using iim::datasets::kFigure1TruthA2;

  iim::data::Table r = iim::datasets::Figure1Relation();
  std::printf("Relation r (Figure 1 of the paper):\n");
  for (size_t i = 0; i < r.NumRows(); ++i) {
    std::printf("  t%zu: A1 = %4.1f  A2 = %4.1f\n", i + 1, r.At(i, 0),
                r.At(i, 1));
  }
  std::printf("  tx: A1 = %4.1f  A2 = ?   (truth: %.1f)\n\n",
              kFigure1QueryA1, kFigure1TruthA2);

  // The incomplete tuple: A2 is NaN.
  iim::data::Table query(r.schema());
  if (!query
           .AppendRow({kFigure1QueryA1,
                       std::numeric_limits<double>::quiet_NaN()})
           .ok()) {
    return 1;
  }

  // --- kNN (Formula 2): average the 3 nearest neighbors' A2 values. ---
  iim::baselines::BaselineOptions base_opt;
  base_opt.k = 3;
  iim::baselines::KnnImputer knn(base_opt);
  if (!knn.Fit(r, /*target=*/1, /*features=*/{0}).ok()) return 1;
  double v_knn = knn.ImputeOne(query.Row(0)).value_or(-1);

  // --- GLR (Formula 4): one global regression for all tuples. ---
  iim::baselines::GlrImputer glr(base_opt);
  if (!glr.Fit(r, 1, {0}).ok()) return 1;
  double v_glr = glr.ImputeOne(query.Row(0)).value_or(-1);

  // --- IIM: learn one model per tuple (l = 4), impute via the k = 3
  //     neighbors' individual models and combine the candidates. ---
  iim::core::IimOptions iim_opt;
  iim_opt.k = 3;
  iim_opt.ell = 4;
  iim::core::IimImputer iim(iim_opt);
  if (!iim.Fit(r, 1, {0}).ok()) return 1;

  // Peek at the learning phase: the two streets get different models.
  std::printf("Individual models (learning phase, l = 4):\n");
  for (size_t i = 0; i < r.NumRows(); ++i) {
    const auto& phi = iim.models().model(i).phi;
    std::printf("  phi_%zu = (%6.2f, %5.2f)\n", i + 1, phi[0], phi[1]);
  }

  auto candidates = iim.Candidates(query.Row(0));
  if (!candidates.ok()) return 1;
  std::printf("\nImputation phase for tx (k = 3 neighbors: t5, t4, t6):\n");
  for (size_t i = 0; i < candidates.value().size(); ++i) {
    std::printf("  candidate %zu: %.3f\n", i + 1, candidates.value()[i]);
  }
  double v_iim = iim.ImputeOne(query.Row(0)).value_or(-1);

  std::printf("\nResults (truth = %.1f):\n", kFigure1TruthA2);
  std::printf("  kNN : %6.3f  (error %5.3f)\n", v_knn,
              std::abs(v_knn - kFigure1TruthA2));
  std::printf("  GLR : %6.3f  (error %5.3f)\n", v_glr,
              std::abs(v_glr - kFigure1TruthA2));
  std::printf("  IIM : %6.3f  (error %5.3f)   <-- individual models win\n",
              v_iim, std::abs(v_iim - kFigure1TruthA2));

  // Multiple imputation (the paper's Section VII extension): instead of a
  // point estimate, query the candidate distribution itself.
  auto dist = iim.ImputeDistribution(query.Row(0));
  if (dist.ok()) {
    std::printf("\nCandidate distribution for tx[A2]:\n");
    std::printf("  mean %.3f, stddev %.3f, median %.3f\n",
                dist.value().Mean(), dist.value().StdDev(),
                dist.value().Quantile(0.5));
    std::printf("  P(tx[A2] in [1.0, 1.5]) = %.2f\n",
                dist.value().MassWithin(1.0, 1.5));
  }
  return 0;
}
