// Streaming sensor ingestion — the paper's motivating workload, online.
//
// examples/sensor_imputation.cpp treats the deployment as a frozen
// relation: collect everything, fit once, impute. Real sensor traffic
// arrives one reading at a time, and a reading lost in transmission needs
// its value *now*, against whatever has been collected so far. This
// walkthrough drives the streaming engine that makes this cheap:
//
//   OnlineIim          ingests complete readings by updating only the
//                      per-tuple models the arrival actually touches
//                      (Proposition 3's incremental U/V), never refitting
//                      the relation;
//   ImputationService  queues arrivals from the network thread and drains
//                      imputation requests in micro-batches.
//
// The payoff is printed at the end: the imputations served online are
// bit-identical to what a from-scratch batch fit on the final relation
// would have produced — streaming costs no accuracy at all.
//
// The epilogue replays the stream through a *sliding window*
// (IimOptions::window_size): each arrival past the cap auto-evicts the
// oldest reading — its contribution leaves every affected model via a
// rank-1 ridge down-date (or a restream when the conditioning guard
// says no), and memory stays bounded no matter how long the deployment
// runs.
//
// Act three shards the deployment (ShardedOnlineIim): arrivals are
// routed round-robin to 4 independent engines, imputation queries
// scatter to every shard and gather through a global top-k merge — and
// the answers still match act one's unsharded engine bit for bit, while
// each arrival's maintenance loop only scans a quarter of the fleet.
//
// Act four makes the deployment durable (IimOptions::persist_dir): every
// arrival is appended to a write-ahead log before it is applied, a
// snapshot of the full engine lands in the background every few hundred
// ops, and when the process "crashes" (the engine is destroyed with no
// shutdown), the next Create restores the newest snapshot, replays the
// log tail, and answers every probe bit-for-bit as the engine that never
// crashed.
//
// Act six breaks the disk under act four's deployment: the wal.append
// fail point (src/common/failpoint.h) injects IoError on every append,
// bounded retries are exhausted, and the engine degrades — further
// ingests are refused with Unavailable while imputations keep serving
// off the last durable state. When the disk comes back,
// RecoverDurability() writes a covering snapshot and returns the engine
// to healthy, and the refused readings are re-ingested as if nothing
// happened. Every transition and refusal is counted.
//
// Act five lets every reading choose its own neighborhood size l
// (IimOptions::adaptive — the paper's Algorithm 3), online: each arrival
// re-validates only the tuples whose validation lists it actually
// enters, the per-tuple l is re-determined lazily at the next query that
// needs the model, and the chosen values drift as the window slides off
// old regimes — yet the imputations stay bit-identical to a batch
// Algorithm 3 refit on the live window.
//
// Act seven asks the question the agreement checks above cannot: is the
// imputation any good *right now*? moo_sample_rate arms the
// masking-one-out monitor — a deterministic hash picks 1% of arrivals,
// holds one monitored cell out, and imputes it from the pre-arrival
// window by IIM plus three cheap challengers (column mean, kNN, global
// ridge); the absolute errors feed per-column decayed estimates and
// percentile rings surfaced through the service stats. With
// quality_routing = kAutoRoute each request is additionally served by
// the target column's current champion method (hysteresis-guarded, with
// a weighted ensemble while a fresh champion settles). The deployment
// here runs four laps of the stream through a sliding window; on the
// last two laps the power channel recalibrates — exactly the drift a
// batch-agreement check is blind to and the monitor exists to expose.
//
//   ./examples/streaming_sensor

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <limits>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/percentile.h"
#include "common/stopwatch.h"
#include "core/iim_imputer.h"
#include "datasets/generator.h"
#include "stream/imputation_service.h"
#include "stream/online_iim.h"
#include "stream/persist/io.h"
#include "stream/sharded_iim.h"

int main() {
  // The deployment of examples/sensor_imputation.cpp: rooms with local
  // linear thermal behaviour, readings over 5 correlated channels.
  iim::datasets::DatasetSpec spec;
  spec.name = "sensor-stream";
  spec.n = 1500;
  spec.m = 5;
  spec.regimes = 6;
  spec.exogenous = 2;
  spec.divergence = 0.8;
  spec.noise = 0.1;
  spec.box_halfwidth = 2.5;
  spec.center_spread = 9.0;
  auto gen = iim::datasets::Generate(spec, /*seed=*/2024);
  if (!gen.ok()) {
    std::fprintf(stderr, "generate: %s\n", gen.status().ToString().c_str());
    return 1;
  }
  const iim::data::Table& readings = gen.value().table;
  const int target = 4;                       // the power channel
  const std::vector<int> features = {0, 1, 2, 3};

  iim::core::IimOptions opt;
  opt.k = 5;
  opt.ell = 20;
  opt.threads = 2;
  auto engine =
      iim::stream::OnlineIim::Create(readings.schema(), target, features, opt);
  if (!engine.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  iim::stream::OnlineIim& online = *engine.value();

  std::printf("Sensor stream: %zu readings x %zu channels, %zu rooms\n",
              readings.NumRows(), readings.NumCols(), spec.regimes);
  std::printf("Transmission bursts knock the %s value out of 4 consecutive "
              "readings every 40; each is imputed on arrival.\n\n",
              readings.schema().name(static_cast<size_t>(target)).c_str());

  // The "network thread": ingest complete readings, request imputations
  // for the lost ones. Submissions return futures immediately; the
  // service drains them in order, coalescing imputation runs.
  std::vector<std::future<iim::Result<double>>> pending;
  std::vector<double> truths;
  {
    iim::stream::ImputationService::Options sopt;
    sopt.max_batch = 32;
    iim::stream::ImputationService service(engine.value().get(), sopt);
    for (size_t i = 0; i < readings.NumRows(); ++i) {
      std::vector<double> row = readings.Row(i).ToVector();
      // Bursty losses: 4 consecutive readings out of every 40 (clustered
      // missing values, Figure 8's hard case — and consecutive requests
      // are what the service coalesces into one micro-batch).
      if (i > 60 && (i / 4) % 10 == 0) {
        truths.push_back(row[static_cast<size_t>(target)]);
        row[static_cast<size_t>(target)] =
            std::numeric_limits<double>::quiet_NaN();
        pending.push_back(service.SubmitImpute(std::move(row)));
      } else {
        service.SubmitIngest(std::move(row));
      }
    }
    service.Drain();
    auto sstats = service.stats();
    std::printf("Service: %zu ingests, %zu imputations in %zu micro-batches "
                "(largest %zu)\n",
                sstats.ingests, sstats.imputations, sstats.batches,
                sstats.largest_batch);
    std::printf("Service latency: ingest p50 %.3f / p99 %.3f / max %.3f ms; "
                "impute batch p50 %.3f / p99 %.3f / max %.3f ms\n",
                sstats.ingest_latency.p50 * 1e3,
                sstats.ingest_latency.p99 * 1e3,
                sstats.ingest_latency.max * 1e3,
                sstats.impute_latency.p50 * 1e3,
                sstats.impute_latency.p99 * 1e3,
                sstats.impute_latency.max * 1e3);
  }

  double acc = 0.0;
  size_t served = 0;
  for (size_t i = 0; i < pending.size(); ++i) {
    iim::Result<double> v = pending[i].get();
    if (!v.ok()) {
      std::fprintf(stderr, "impute %zu: %s\n", i,
                   v.status().ToString().c_str());
      return 1;
    }
    double d = v.value() - truths[i];
    acc += d * d;
    ++served;
  }
  std::printf("Online RMS over %zu lost readings: %.3f\n\n", served,
              std::sqrt(acc / static_cast<double>(served)));

  const auto& stats = online.stats();
  std::printf("Engine: %zu ingested; per-arrival maintenance: %zu cheap "
              "prefix appends, %zu invalidations, %zu lazy model solves\n",
              stats.ingested, stats.fast_path_appends,
              stats.models_invalidated, stats.models_solved);
  // One coherent index snapshot: rebuild counters, double-buffer state
  // and the worst writer-lock hold an arrival ever paid.
  iim::stream::DynamicIndex::Stats istats = online.index().stats();
  std::printf("Index: %zu points, KD-tree over %zu (tail %zu); %zu rebuilds "
              "= %zu background launches, %zu swaps, %zu discarded; worst "
              "Append lock hold %.3f ms\n\n",
              istats.live, istats.tree_size, istats.tail_size,
              istats.rebuilds, istats.launches, istats.swaps,
              istats.discarded, istats.max_append_hold_seconds * 1e3);

  // The streaming guarantee: a batch engine fitted from scratch on the
  // final relation must agree with the online engine bit for bit.
  iim::core::IimImputer batch(opt);
  iim::Status fit = batch.Fit(online.table(), target, features);
  if (!fit.ok()) {
    std::fprintf(stderr, "batch fit: %s\n", fit.ToString().c_str());
    return 1;
  }
  size_t mismatches = 0;
  for (size_t i = 0; i < readings.NumRows(); i += 97) {
    std::vector<double> row = readings.Row(i).ToVector();
    row[static_cast<size_t>(target)] =
        std::numeric_limits<double>::quiet_NaN();
    iim::data::RowView view(row.data(), row.size());
    iim::Result<double> got = online.ImputeOne(view);
    iim::Result<double> want = batch.ImputeOne(view);
    if (!got.ok() || !want.ok() || got.value() != want.value()) ++mismatches;
  }
  std::printf("Batch-refit agreement: %s\n",
              mismatches == 0 ? "bit-identical (streaming costs no accuracy)"
                              : "MISMATCH");
  if (mismatches != 0) return 1;

  // Act two: the same stream through a sliding window. A deployment that
  // runs for months cannot keep every reading — and models learned on
  // last winter's regime mislead today's imputations. window_size bounds
  // both: each arrival past the cap retires the oldest live reading.
  const size_t kWindow = 500;
  opt.window_size = kWindow;
  auto wengine =
      iim::stream::OnlineIim::Create(readings.schema(), target, features, opt);
  if (!wengine.ok()) {
    std::fprintf(stderr, "create windowed: %s\n",
                 wengine.status().ToString().c_str());
    return 1;
  }
  iim::stream::OnlineIim& windowed = *wengine.value();
  std::vector<double> arrival_seconds;
  arrival_seconds.reserve(readings.NumRows());
  iim::Stopwatch arrival_timer;
  for (size_t i = 0; i < readings.NumRows(); ++i) {
    arrival_timer.Restart();
    iim::Status st = windowed.Ingest(readings.Row(i));
    arrival_seconds.push_back(arrival_timer.ElapsedSeconds());
    if (!st.ok()) {
      std::fprintf(stderr, "windowed ingest %zu: %s\n", i,
                   st.ToString().c_str());
      return 1;
    }
    // Serve a lost reading every burst, as act one did. This is what puts
    // solved models in the window for later evictions to down-date.
    if (i > 60 && i % 40 == 0) {
      std::vector<double> lost = readings.Row(i - 1).ToVector();
      lost[static_cast<size_t>(target)] =
          std::numeric_limits<double>::quiet_NaN();
      iim::data::RowView lost_view(lost.data(), lost.size());
      if (!windowed.ImputeOne(lost_view).ok()) {
        std::fprintf(stderr, "windowed impute %zu failed\n", i);
        return 1;
      }
    }
  }
  const auto& wstats = windowed.stats();
  std::printf("\nSliding window (window_size = %zu): %zu ingested, %zu "
              "evicted, %zu live\n",
              kWindow, wstats.ingested, wstats.evicted, windowed.size());
  // The tail-latency smoke check: every arrival above carried ingest +
  // auto-evict + any compaction; the percentiles make a regression in any
  // of them visible at a glance.
  iim::LatencySummary arrival_lat = iim::Summarize(arrival_seconds);
  std::printf("Per-arrival latency (ingest + auto-evict): p50 %.3f / p99 "
              "%.3f / max %.3f ms\n",
              arrival_lat.p50 * 1e3, arrival_lat.p99 * 1e3,
              arrival_lat.max * 1e3);
  iim::stream::DynamicIndex::Stats wistats = windowed.index().stats();
  std::printf("Eviction repair: %zu down-dates, %zu restream fallbacks, %zu "
              "backfills over %zu reverse-neighbor postings edges; %zu "
              "compactions kept %zu index slots (worst compact lock hold "
              "%.3f ms)\n",
              wstats.downdates, wstats.downdate_fallbacks, wstats.backfills,
              wstats.postings_edges, wstats.compactions, wistats.slots,
              wistats.max_compact_hold_seconds * 1e3);

  // The windowed guarantee: a batch engine fitted on the live window (the
  // last kWindow readings) agrees with the windowed engine — bitwise when
  // every eviction restreamed, within tight tolerance when down-dates
  // repaired accumulators in place.
  iim::core::IimImputer wbatch(opt);
  iim::Status wfit = wbatch.Fit(windowed.table(), target, features);
  if (!wfit.ok()) {
    std::fprintf(stderr, "window batch fit: %s\n", wfit.ToString().c_str());
    return 1;
  }
  size_t wmismatches = 0;
  for (size_t i = 0; i < readings.NumRows(); i += 97) {
    std::vector<double> row = readings.Row(i).ToVector();
    row[static_cast<size_t>(target)] =
        std::numeric_limits<double>::quiet_NaN();
    iim::data::RowView view(row.data(), row.size());
    iim::Result<double> got = windowed.ImputeOne(view);
    iim::Result<double> want = wbatch.ImputeOne(view);
    if (!got.ok() || !want.ok()) {
      ++wmismatches;
      continue;
    }
    double scale = std::max(1.0, std::fabs(want.value()));
    if (std::fabs(got.value() - want.value()) > 1e-7 * scale) ++wmismatches;
  }
  std::printf("Window batch-refit agreement: %s\n",
              wmismatches == 0
                  ? "matches a fresh fit on the live window (eviction costs "
                    "no accuracy)"
                  : "MISMATCH");
  if (wmismatches != 0) return 1;

  // Act three: shard the deployment. Four independent engines split the
  // stream round-robin; queries scatter to every shard and merge into
  // the GLOBAL top-k, so the sharded answers must equal act one's
  // unsharded engine bit for bit — sharding moves work, not semantics.
  iim::core::IimOptions shopt = opt;
  shopt.window_size = 0;  // act one ran unwindowed; mirror it
  shopt.shards = 4;
  auto sharded_r = iim::stream::ShardedOnlineIim::Create(
      readings.schema(), target, features, shopt);
  if (!sharded_r.ok()) {
    std::fprintf(stderr, "sharded create: %s\n",
                 sharded_r.status().ToString().c_str());
    return 1;
  }
  iim::stream::ShardedOnlineIim& sharded = *sharded_r.value();
  // Replay exactly the readings act one ingested (the lost ones were
  // imputed, never ingested), in IngestBatch chunks — the coalesced
  // drive the sharded service uses.
  std::vector<std::vector<double>> replay;
  for (size_t i = 0; i < readings.NumRows(); ++i) {
    if (i > 60 && (i / 4) % 10 == 0) continue;
    replay.push_back(readings.Row(i).ToVector());
  }
  for (size_t i = 0; i < replay.size(); i += 128) {
    std::vector<iim::data::RowView> chunk;
    for (size_t j = i; j < std::min(replay.size(), i + 128); ++j) {
      chunk.emplace_back(replay[j].data(), replay[j].size());
    }
    for (const iim::Status& st : sharded.IngestBatch(chunk)) {
      if (!st.ok()) {
        std::fprintf(stderr, "sharded ingest: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  size_t smismatches = 0;
  for (size_t i = 0; i < readings.NumRows(); i += 97) {
    std::vector<double> row = readings.Row(i).ToVector();
    row[static_cast<size_t>(target)] =
        std::numeric_limits<double>::quiet_NaN();
    iim::data::RowView view(row.data(), row.size());
    iim::Result<double> got = sharded.ImputeOne(view);
    iim::Result<double> want = online.ImputeOne(view);
    if (!got.ok() || !want.ok() || got.value() != want.value())
      ++smismatches;
  }
  auto sstats = sharded.stats();
  std::printf("\nSharded (S = %zu, round robin): ", sharded.shards());
  for (size_t s = 0; s < sharded.shards(); ++s) {
    std::printf("%s%zu", s == 0 ? "residents " : " / ",
                sharded.shard(s).size());
  }
  std::printf("; %zu cross-shard merges; global order core: %zu model "
              "solves, %zu served clean, %zu holders dirtied by arrivals\n",
              sstats.merges, sstats.models_fitted, sstats.global_fits_reused,
              sstats.holders_invalidated);
  std::printf("Sharded-vs-unsharded agreement: %s\n",
              smismatches == 0
                  ? "bit-identical (the merge reproduces the global "
                    "neighborhoods)"
                  : "MISMATCH");
  if (smismatches != 0) return 1;

  // Act four: survive a crash. The same stream, but every arrival goes
  // through the write-ahead log before it is applied and a background
  // snapshot lands every 400 ops. Destroying the engine mid-flight (no
  // shutdown, no flush beyond the per-record log append) is the crash;
  // recovery restores the newest snapshot and replays the log tail
  // through the normal ingest path — so the recovered engine must answer
  // exactly like act one's never-persisted engine, which saw the same
  // arrivals.
  char tmpl[] = "/tmp/iim_sensor_persist_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  std::string persist_dir = std::string(tmpl) + "/wal";
  iim::core::IimOptions dopt = opt;
  dopt.window_size = 0;  // mirror act one
  dopt.persist_dir = persist_dir;
  dopt.snapshot_every = 400;
  {
    auto durable = iim::stream::OnlineIim::Create(readings.schema(), target,
                                                  features, dopt);
    if (!durable.ok()) {
      std::fprintf(stderr, "durable create: %s\n",
                   durable.status().ToString().c_str());
      return 1;
    }
    for (const std::vector<double>& row : replay) {
      iim::data::RowView view(row.data(), row.size());
      iim::Status st = durable.value()->Ingest(view);
      if (!st.ok()) {
        std::fprintf(stderr, "durable ingest: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    iim::Status flushed = durable.value()->FlushPersistence();
    if (!flushed.ok()) {
      std::fprintf(stderr, "flush: %s\n", flushed.ToString().c_str());
      return 1;
    }
    const auto& dstats = durable.value()->stats();
    std::printf("\nDurable (snapshot every %zu ops): %llu ops logged, %zu "
                "snapshots written; worst on-thread serialize pause %.3f "
                "ms\n",
                dopt.snapshot_every,
                static_cast<unsigned long long>(
                    durable.value()->durable_ops()),
                dstats.snapshots_written,
                dstats.max_snapshot_serialize_seconds * 1e3);
    // The engine dies here — destroyed, never told to shut down. Only
    // the files in persist_dir survive.
  }
  iim::Stopwatch recovery_timer;
  auto recovered = iim::stream::OnlineIim::Create(readings.schema(), target,
                                                  features, dopt);
  double recovery_seconds = recovery_timer.ElapsedSeconds();
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  const auto& rstats = recovered.value()->stats();
  std::printf("Recovered in %.1f ms: %zu snapshot restored + %zu log "
              "records replayed; %zu readings live\n",
              recovery_seconds * 1e3, rstats.snapshots_loaded,
              rstats.log_records_replayed, recovered.value()->size());
  size_t dmismatches = 0;
  for (size_t i = 0; i < readings.NumRows(); i += 97) {
    std::vector<double> row = readings.Row(i).ToVector();
    row[static_cast<size_t>(target)] =
        std::numeric_limits<double>::quiet_NaN();
    iim::data::RowView view(row.data(), row.size());
    iim::Result<double> got = recovered.value()->ImputeOne(view);
    iim::Result<double> want = online.ImputeOne(view);
    if (!got.ok() || !want.ok() || got.value() != want.value())
      ++dmismatches;
  }
  std::printf("Recovered-vs-never-crashed agreement: %s\n",
              dmismatches == 0
                  ? "bit-identical (the log replay rebuilds the exact "
                    "state)"
                  : "MISMATCH");
  recovered.value().reset();
  auto leftover = iim::stream::persist::ListDir(persist_dir);
  if (leftover.ok()) {
    for (const std::string& name : leftover.value()) {
      (void)iim::stream::persist::RemoveFile(persist_dir + "/" + name);
    }
  }
  ::rmdir(persist_dir.c_str());
  ::rmdir(tmpl);
  if (dmismatches != 0) return 1;

  // Act five: adaptive neighborhood sizes, online. A fixed l treats every
  // room alike; Algorithm 3 instead validates candidate prefixes of each
  // reading's learning order against its nearest neighbors and keeps the
  // cheapest. With options.adaptive the engine maintains that machinery
  // on the stream: an arrival re-validates only the tuples whose
  // validation lists it enters, and a tuple's l is re-determined lazily
  // the next time a query needs its model — so the chosen values drift
  // as the window slides off old regimes, at per-arrival cost.
  iim::core::IimOptions aopt = opt;
  aopt.window_size = 500;
  aopt.adaptive = true;
  aopt.max_ell = 24;
  aopt.step_h = 4;
  aopt.validation_k = 5;
  auto aengine_r = iim::stream::OnlineIim::Create(readings.schema(), target,
                                                  features, aopt);
  if (!aengine_r.ok()) {
    std::fprintf(stderr, "adaptive create: %s\n",
                 aengine_r.status().ToString().c_str());
    return 1;
  }
  iim::stream::OnlineIim& adaptive = *aengine_r.value();

  // Spread of the CURRENT per-tuple l over the live window. A reading
  // reports 0 until some query has forced its sweep, so the count also
  // shows how lazy the determination really is.
  auto print_chosen_spread = [&](const char* when) {
    size_t total = adaptive.stats().ingested;
    size_t live = adaptive.size();
    std::vector<size_t> ls;
    for (uint64_t a = total - live; a < total; ++a) {
      size_t l = adaptive.ChosenEllByArrival(a);
      if (l > 0) ls.push_back(l);
    }
    std::sort(ls.begin(), ls.end());
    if (ls.empty()) {
      std::printf("  %s: no reading has a determined l yet\n", when);
      return;
    }
    std::printf("  %s: %zu/%zu readings hold a current l; min %zu / median "
                "%zu / max %zu\n",
                when, ls.size(), live, ls.front(), ls[ls.size() / 2],
                ls.back());
  };

  std::printf("\nAdaptive per-reading l (window %zu, candidates 1..%zu step "
              "%zu):\n",
              aopt.window_size, aopt.max_ell, aopt.step_h);
  for (size_t i = 0; i < readings.NumRows(); ++i) {
    iim::Status st = adaptive.Ingest(readings.Row(i));
    if (!st.ok()) {
      std::fprintf(stderr, "adaptive ingest %zu: %s\n", i,
                   st.ToString().c_str());
      return 1;
    }
    // Steady probe traffic: every served imputation re-determines l for
    // the models the preceding arrivals dirtied.
    if (i > 60 && i % 8 == 0) {
      std::vector<double> lost = readings.Row(i - 1).ToVector();
      lost[static_cast<size_t>(target)] =
          std::numeric_limits<double>::quiet_NaN();
      iim::data::RowView lost_view(lost.data(), lost.size());
      if (!adaptive.ImputeOne(lost_view).ok()) {
        std::fprintf(stderr, "adaptive impute %zu failed\n", i);
        return 1;
      }
    }
    if (i == 900) print_chosen_spread("mid-stream");
  }
  print_chosen_spread("end of stream");
  const auto& astats = adaptive.stats();
  std::printf("  maintenance: %zu sweeps solved, %zu served clean, %zu "
              "holders dirtied by arrivals, %zu readings changed their l\n",
              astats.models_solved, astats.global_fits_reused,
              astats.holders_invalidated, astats.adaptive_l_changes);

  // The adaptive guarantee: a batch Algorithm 3 on the live window agrees
  // bitwise — adaptive sweeps always restream a fresh accumulator, so
  // this holds even with down-dating on.
  iim::core::IimImputer abatch(aopt);
  iim::Status afit = abatch.Fit(adaptive.table(), target, features);
  if (!afit.ok()) {
    std::fprintf(stderr, "adaptive batch fit: %s\n",
                 afit.ToString().c_str());
    return 1;
  }
  size_t amismatches = 0;
  for (size_t i = 0; i < readings.NumRows(); i += 97) {
    std::vector<double> row = readings.Row(i).ToVector();
    row[static_cast<size_t>(target)] =
        std::numeric_limits<double>::quiet_NaN();
    iim::data::RowView view(row.data(), row.size());
    iim::Result<double> got = adaptive.ImputeOne(view);
    iim::Result<double> want = abatch.ImputeOne(view);
    if (!got.ok() || !want.ok() || got.value() != want.value())
      ++amismatches;
  }
  std::printf("Adaptive batch-refit agreement: %s\n",
              amismatches == 0
                  ? "bit-identical (per-tuple l costs no accuracy online)"
                  : "MISMATCH");
  if (amismatches != 0) return 1;

  // Act six: survive a failing disk. Act four showed the log replay;
  // this act shows the failure policy around the log. The disk "fills"
  // mid-stream — the wal.append fail point injects IoError on every
  // append — bounded retries find the fault persistent, and the engine
  // degrades: arrivals are refused with Unavailable (never half-applied)
  // while imputations keep serving off the last durable state. When the
  // disk comes back, RecoverDurability() re-syncs the store, writes a
  // covering snapshot and returns the engine to healthy.
  char ftmpl[] = "/tmp/iim_sensor_faults_XXXXXX";
  if (mkdtemp(ftmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  std::string fault_dir = std::string(ftmpl) + "/wal";
  iim::core::IimOptions fopt = opt;
  fopt.window_size = 0;
  fopt.persist_dir = fault_dir;
  fopt.snapshot_every = 400;
  fopt.wal_retry_attempts = 2;  // two bounded retries before degrading
  fopt.wal_retry_base = 0.0005;
  auto fragile_r = iim::stream::OnlineIim::Create(readings.schema(), target,
                                                  features, fopt);
  if (!fragile_r.ok()) {
    std::fprintf(stderr, "fragile create: %s\n",
                 fragile_r.status().ToString().c_str());
    return 1;
  }
  iim::stream::OnlineIim& fragile = *fragile_r.value();
  const size_t kOutageAt = 300;
  const size_t kOutageSpan = 20;
  for (size_t i = 0; i < kOutageAt; ++i) {
    iim::Status st = fragile.Ingest(readings.Row(i));
    if (!st.ok()) {
      std::fprintf(stderr, "fragile ingest %zu: %s\n", i,
                   st.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nFailing disk (WAL retries %zu, then degrade): %llu readings "
              "durable, health %s\n",
              fopt.wal_retry_attempts,
              static_cast<unsigned long long>(fragile.durable_ops()),
              iim::stream::HealthStateName(fragile.Health()));

  // The disk fills: every append from here on fails.
  iim::fail::Spec disk_full;
  disk_full.code = iim::StatusCode::kIoError;
  disk_full.message = "simulated disk full";
  iim::fail::Enable("wal.append", disk_full);
  size_t refused = 0;
  for (size_t i = kOutageAt; i < kOutageAt + kOutageSpan; ++i) {
    if (!fragile.Ingest(readings.Row(i)).ok()) ++refused;
  }
  std::printf("Outage: %zu/%zu arrivals refused un-applied, health %s\n",
              refused, kOutageSpan,
              iim::stream::HealthStateName(fragile.Health()));
  // Reads ride through the outage: a lost reading is still imputed from
  // the durable prefix.
  std::vector<double> lost = readings.Row(kOutageAt - 1).ToVector();
  lost[static_cast<size_t>(target)] = std::numeric_limits<double>::quiet_NaN();
  iim::data::RowView lost_view(lost.data(), lost.size());
  iim::Result<double> served_degraded = fragile.ImputeOne(lost_view);
  if (!served_degraded.ok()) {
    std::fprintf(stderr, "degraded impute: %s\n",
                 served_degraded.status().ToString().c_str());
    return 1;
  }
  std::printf("Imputation during the outage: served %.3f (reads never "
              "degrade)\n",
              served_degraded.value());

  // The disk comes back; recovery is explicit, never a lucky retry.
  iim::fail::DisableAll();
  iim::Status healed = fragile.RecoverDurability();
  if (!healed.ok()) {
    std::fprintf(stderr, "recover durability: %s\n",
                 healed.ToString().c_str());
    return 1;
  }
  for (size_t i = kOutageAt; i < kOutageAt + kOutageSpan; ++i) {
    iim::Status st = fragile.Ingest(readings.Row(i));
    if (!st.ok()) {
      std::fprintf(stderr, "post-recovery ingest %zu: %s\n", i,
                   st.ToString().c_str());
      return 1;
    }
  }
  const auto& fstats = fragile.stats();
  std::printf("Recovered: health %s, refused readings re-ingested; %llu "
              "durable ops, %zu WAL retries, %zu refusals, %zu health "
              "transitions\n",
              iim::stream::HealthStateName(fragile.Health()),
              static_cast<unsigned long long>(fragile.durable_ops()),
              fstats.wal_retries, fstats.degraded_rejected,
              fstats.health_transitions);
  bool fault_act_ok = fragile.Health() == iim::stream::HealthState::kHealthy &&
                      refused == kOutageSpan &&
                      fragile.durable_ops() >=
                          static_cast<uint64_t>(kOutageAt + kOutageSpan) &&
                      fstats.health_transitions == 2;
  auto fault_leftover = iim::stream::persist::ListDir(fault_dir);
  if (fault_leftover.ok()) {
    for (const std::string& name : fault_leftover.value()) {
      (void)iim::stream::persist::RemoveFile(fault_dir + "/" + name);
    }
  }
  ::rmdir(fault_dir.c_str());
  ::rmdir(ftmpl);
  if (!fault_act_ok) {
    std::fprintf(stderr, "fault act left unexpected state\n");
    return 1;
  }

  // Act seven: the masking-one-out quality monitor (see the header
  // comment). Four laps of the stream through a 500-reading window, 1%
  // holdout trickle, champion/challenger auto-routing; the power channel
  // recalibrates (y -> y/2 + 3) halfway through the deployment.
  iim::core::IimOptions mopt = opt;
  mopt.window_size = 500;
  mopt.moo_sample_rate = 0.01;
  mopt.quality_routing = iim::core::IimOptions::QualityRouting::kAutoRoute;
  auto monitored_r = iim::stream::OnlineIim::Create(readings.schema(), target,
                                                    features, mopt);
  if (!monitored_r.ok()) {
    std::fprintf(stderr, "monitored create: %s\n",
                 monitored_r.status().ToString().c_str());
    return 1;
  }
  const size_t kLaps = 4;
  std::vector<std::future<iim::Result<double>>> qpending;
  iim::stream::ImputationService::Stats qstats;
  {
    iim::stream::ImputationService::Options sopt;
    sopt.max_batch = 32;
    iim::stream::ImputationService qservice(monitored_r.value().get(), sopt);
    for (size_t lap = 0; lap < kLaps; ++lap) {
      for (size_t i = 0; i < readings.NumRows(); ++i) {
        std::vector<double> row = readings.Row(i).ToVector();
        if (lap >= kLaps / 2) {
          row[static_cast<size_t>(target)] =
              0.5 * row[static_cast<size_t>(target)] + 3.0;
        }
        if (i > 60 && (i / 4) % 10 == 0) {
          row[static_cast<size_t>(target)] =
              std::numeric_limits<double>::quiet_NaN();
          qpending.push_back(qservice.SubmitImpute(std::move(row)));
        } else {
          qservice.SubmitIngest(std::move(row));
        }
      }
      // Quiesce between laps: a lap submits more than the service's
      // bounded queue admits at once, and the backpressure shed is
      // load-shedding by design, not a flow-control channel.
      qservice.Drain();
    }
    qstats = qservice.stats();
  }
  for (size_t i = 0; i < qpending.size(); ++i) {
    iim::Result<double> v = qpending[i].get();
    if (!v.ok()) {
      std::fprintf(stderr, "monitored impute %zu: %s\n", i,
                   v.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("\nQuality monitor (1%% masking-one-out holdouts, "
              "auto-route): %zu probes, %zu skipped; %zu routed + %zu "
              "ensemble serves, %zu champion switches\n",
              qstats.moo_probes, qstats.moo_skipped, qstats.routed_serves,
              qstats.ensemble_serves, qstats.champion_switches);
  std::printf("Held-out absolute error per channel (decayed rms, then the "
              "recent-error percentiles):\n");
  for (size_t c = 0; c < qstats.quality.size(); ++c) {
    const iim::stream::QualityColumnStats& col = qstats.quality[c];
    const std::string& name =
        c < features.size()
            ? readings.schema().name(static_cast<size_t>(features[c]))
            : readings.schema().name(static_cast<size_t>(target));
    std::printf("  %s: %llu holdouts, champion %s\n", name.c_str(),
                static_cast<unsigned long long>(col.holdouts),
                iim::stream::QualityMethodName(col.champion));
    for (int m = 0; m < iim::stream::kQualityMethods; ++m) {
      size_t mi = static_cast<size_t>(m);
      if (col.samples[mi] == 0) continue;
      std::printf("    %-4s n=%-3llu rms %7.3f   abs err p50 %7.3f / p99 "
                  "%7.3f / max %7.3f\n",
                  iim::stream::QualityMethodName(m),
                  static_cast<unsigned long long>(col.samples[mi]),
                  col.ewma_rms[mi], col.abs_error[mi].p50,
                  col.abs_error[mi].p99, col.abs_error[mi].max);
    }
  }
  if (qstats.moo_probes == 0 ||
      qstats.quality.size() != features.size() + 1) {
    std::fprintf(stderr, "quality act left unexpected state\n");
    return 1;
  }
  return 0;
}
