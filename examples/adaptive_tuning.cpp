// A tour of IIM's knobs on a heterogeneous dataset:
//   - the number of learning neighbors l (fixed) and why the extremes
//     degenerate to kNN (l = 1) and GLR (l = n), per Propositions 1-2;
//   - adaptive per-tuple selection of l (Algorithm 3) and the chosen-l
//     histogram it produces;
//   - the stepping parameter h and the incremental-computation switch,
//     with their accuracy/time tradeoff.
//
//   ./examples/adaptive_tuning

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/iim_imputer.h"
#include "datasets/specs.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace {

double RunRms(const iim::data::Table& dataset,
              const iim::core::IimOptions& options, double* fit_seconds) {
  iim::eval::ExperimentConfig config;
  config.inject.tuple_count = 100;
  config.seed = 31;
  auto res = iim::eval::RunComparison(
      dataset, config,
      {{"IIM", [options]() {
          return std::unique_ptr<iim::baselines::Imputer>(
              std::make_unique<iim::core::IimImputer>(options));
        }}});
  if (!res.ok()) return -1;
  if (fit_seconds != nullptr) {
    *fit_seconds = res.value().methods[0].fit_seconds;
  }
  return res.value().methods[0].rms;
}

}  // namespace

int main() {
  iim::datasets::DatasetSpec spec = iim::datasets::Asf();
  spec.n = 800;  // keep the example snappy
  auto gen = iim::datasets::Generate(spec, 5);
  if (!gen.ok()) return 1;
  const iim::data::Table& dataset = gen.value().table;

  std::printf("Dataset: ASF-like, %zu tuples, %zu attributes, %zu regimes\n\n",
              dataset.NumRows(), dataset.NumCols(), spec.regimes);

  // --- Part 1: fixed l sweep (the Figure 11 U-shape). ---
  std::printf("Part 1: fixed number of learning neighbors l\n");
  iim::eval::TablePrinter sweep({"l", "RMS", "note"});
  for (size_t ell : {1ul, 5ul, 20ul, 80ul, 300ul, 700ul}) {
    iim::core::IimOptions opt;
    opt.k = 5;
    opt.ell = ell;
    opt.alpha = 1.0;
    std::string note;
    if (ell == 1) note = "degenerates to kNN (Prop. 1)";
    if (ell == 700) note = "~l = n: degenerates to GLR (Prop. 2)";
    sweep.AddRow({std::to_string(ell),
                  iim::eval::FormatMetric(RunRms(dataset, opt, nullptr), 3),
                  note});
  }
  std::printf("%s\n", sweep.ToString().c_str());

  // --- Part 2: adaptive learning and its chosen-l distribution. ---
  std::printf("Part 2: adaptive per-tuple l (Algorithm 3)\n");
  iim::core::IimOptions adaptive;
  adaptive.k = 5;
  adaptive.adaptive = true;
  adaptive.max_ell = 200;
  adaptive.step_h = 2;
  adaptive.alpha = 1.0;
  double adaptive_rms = RunRms(dataset, adaptive, nullptr);
  std::printf("  adaptive RMS: %.3f\n", adaptive_rms);

  // Re-fit on the full relation to inspect the chosen-l histogram.
  iim::core::IimImputer inspector(adaptive);
  std::vector<int> features = {0, 1, 2, 3, 4};
  if (inspector.Fit(dataset, 5, features).ok()) {
    std::map<std::string, size_t> buckets;
    for (size_t ell : inspector.adaptive_stats().chosen_ell) {
      if (ell <= 5) {
        ++buckets["l in [1, 5]"];
      } else if (ell <= 25) {
        ++buckets["l in (5, 25]"];
      } else if (ell <= 100) {
        ++buckets["l in (25, 100]"];
      } else {
        ++buckets["l > 100"];
      }
    }
    std::printf("  chosen-l histogram (heterogeneity in action):\n");
    for (const auto& [bucket, count] : buckets) {
      std::printf("    %-16s %5zu tuples\n", bucket.c_str(), count);
    }
  }

  // --- Part 3: stepping h and incremental computation. ---
  std::printf("\nPart 3: stepping h and incremental learning (Fig. 12-13)\n");
  iim::eval::TablePrinter tradeoff(
      {"h", "scheme", "RMS", "determination time"});
  for (size_t h : {1ul, 20ul, 100ul}) {
    for (bool incremental : {false, true}) {
      iim::core::IimOptions opt = adaptive;
      opt.step_h = h;
      opt.incremental = incremental;
      double secs = 0.0;
      double rms = RunRms(dataset, opt, &secs);
      tradeoff.AddRow({std::to_string(h),
                       incremental ? "incremental" : "straightforward",
                       iim::eval::FormatMetric(rms, 3),
                       iim::eval::FormatSeconds(secs)});
    }
  }
  std::printf("%s", tradeoff.ToString().c_str());
  std::printf("\nSame h => identical RMS for both schemes; incremental is\n"
              "the same math with O(m^2 h) updates instead of O(m^2 l).\n");
  return 0;
}
