// Figure 12: scalability of adaptive learning — determination time of the
// straightforward recomputation versus the incremental scheme of
// Proposition 3 (stepping h = 50), over SN and CA at growing n.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/iim_imputer.h"
#include "eval/report.h"

namespace {

// Learning-phase (determination) seconds for one configuration.
double DeterminationSeconds(const iim::data::Table& r, bool incremental) {
  iim::core::IimOptions opt;
  opt.k = 5;
  opt.adaptive = true;
  opt.max_ell = 1000;
  opt.step_h = 50;  // the paper's Figure 12 setting
  opt.incremental = incremental;
  opt.validation_sample = 1000;
  iim::core::IimImputer iim(opt);
  std::vector<int> features;
  for (size_t c = 0; c + 1 < r.NumCols(); ++c) {
    features.push_back(static_cast<int>(c));
  }
  iim::Status st = iim.Fit(r, static_cast<int>(r.NumCols() - 1), features);
  if (!st.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  // The paper's Figure 12 accounting: NN lists are precomputed once, so
  // the reported cost is model determination (computation + validation)
  // only — that is where straightforward and incremental differ.
  return iim.adaptive_stats().determination_seconds;
}

void RunPanel(const std::string& dataset_name,
              const std::vector<size_t>& sizes) {
  iim::eval::TablePrinter table(
      {"n", "Straightforward", "Incremental", "Speedup"});
  bool always_faster = true;
  double last_speedup = 0.0;
  for (size_t n : sizes) {
    iim::data::Table r = iim::bench::LoadDataset(dataset_name, n);
    double straightforward = DeterminationSeconds(r, false);
    double incremental = DeterminationSeconds(r, true);
    last_speedup = straightforward / incremental;
    if (incremental >= straightforward) always_faster = false;
    table.AddRow({std::to_string(n),
                  iim::eval::FormatSeconds(straightforward),
                  iim::eval::FormatSeconds(incremental),
                  iim::eval::FormatMetric(last_speedup, 1) + "x"});
  }
  std::printf("(%s) determination time\n%s", dataset_name.c_str(),
              table.ToString().c_str());
  iim::bench::ShapeCheck(
      dataset_name + ": incremental faster at every n", always_faster);
  iim::bench::ShapeCheck(
      dataset_name + ": speedup grows to >= 3x at the largest n",
      last_speedup >= 3.0);
}

}  // namespace

int main() {
  iim::bench::PrintHeader(
      "Figure 12: straightforward vs incremental adaptive learning",
      "Zhang et al., ICDE 2019, Figure 12 (h = 50)");
  RunPanel("SN", {10000, 30000, 60000, 100000});
  RunPanel("CA", {2000, 6000, 12000, 20000});
  return 0;
}
