#include "bench/bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "baselines/registry.h"
#include "core/iim_imputer.h"
#include "datasets/specs.h"
#include "eval/report.h"

namespace iim::bench {

size_t BenchThreads(size_t fallback) {
  const char* env = std::getenv("IIM_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  unsigned long parsed = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return static_cast<size_t>(parsed);
}

core::IimOptions DefaultIimOptions(size_t k) {
  core::IimOptions opt;
  opt.k = k;
  opt.threads = BenchThreads();
  opt.adaptive = true;
  opt.max_ell = 100;
  opt.step_h = 2;
  // Validate against every complete tuple (the paper's Algorithm 3):
  // sampling validators makes the per-tuple l* selection noisy because
  // each tuple is judged by only ~k * sample / n validators.
  opt.validation_sample = 0;
  // A real ridge penalty: local designs over few neighbors are collinear,
  // and near-OLS coefficients extrapolate badly.
  opt.alpha = 1.0;
  return opt;
}

eval::Method IimMethod(const core::IimOptions& options,
                       const std::string& label) {
  return eval::Method{label, [options]() {
                        return std::unique_ptr<baselines::Imputer>(
                            std::make_unique<core::IimImputer>(options));
                      }};
}

std::vector<eval::Method> BaselineMethods(
    const std::vector<std::string>& names, size_t k, size_t threads) {
  std::vector<eval::Method> methods;
  for (const std::string& name : names) {
    methods.push_back(eval::Method{name, [name, k, threads]() {
      baselines::BaselineOptions opt;
      opt.k = k;
      opt.threads = threads;
      Result<std::unique_ptr<baselines::Imputer>> made =
          baselines::MakeBaseline(name, opt);
      if (!made.ok()) {
        std::fprintf(stderr, "unknown baseline %s\n", name.c_str());
        std::exit(1);
      }
      return std::move(made).value();
    }});
  }
  return methods;
}

std::vector<eval::Method> MethodSuite(const std::vector<std::string>& names,
                                      const core::IimOptions& iim_options) {
  std::vector<eval::Method> methods;
  methods.push_back(IimMethod(iim_options));
  for (eval::Method& m :
       BaselineMethods(names, iim_options.k, iim_options.threads)) {
    methods.push_back(std::move(m));
  }
  return methods;
}

data::Table LoadDataset(const std::string& name, size_t n_override,
                        uint64_t seed) {
  std::optional<datasets::DatasetSpec> spec = datasets::SpecByName(name);
  if (!spec.has_value()) {
    std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
    std::exit(1);
  }
  if (n_override > 0) spec->n = n_override;
  Result<datasets::GeneratedDataset> gen = datasets::Generate(*spec, seed);
  if (!gen.ok()) {
    std::fprintf(stderr, "generate(%s): %s\n", name.c_str(),
                 gen.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(gen).value().table;
}

double RmsOf(const eval::ExperimentResult& result, const std::string& name) {
  for (const auto& m : result.methods) {
    if (m.name == name) return m.rms;
  }
  return std::nan("");
}

void PrintSweep(const std::string& x_name,
                const std::vector<std::string>& method_names,
                const std::vector<SweepPoint>& points) {
  std::vector<std::string> headers = {x_name};
  for (const auto& m : method_names) headers.push_back(m);

  eval::TablePrinter rms_table(headers);
  eval::TablePrinter time_table(headers);
  for (const SweepPoint& p : points) {
    std::vector<std::string> rms_row = {p.label};
    std::vector<std::string> time_row = {p.label};
    for (const auto& name : method_names) {
      double rms = std::nan("");
      double secs = std::nan("");
      for (const auto& m : p.result.methods) {
        if (m.name == name) {
          rms = m.rms;
          secs = m.impute_seconds;
        }
      }
      rms_row.push_back(eval::FormatMetric(rms, 3));
      time_row.push_back(std::isnan(secs) ? "-" : eval::FormatSeconds(secs));
    }
    rms_table.AddRow(rms_row);
    time_table.AddRow(time_row);
  }
  std::printf("(a) Imputation RMS error\n%s", rms_table.ToString().c_str());
  std::printf("(b) Imputation time cost\n%s", time_table.ToString().c_str());
}

void ShapeCheck(const std::string& claim, bool held) {
  std::printf("SHAPE CHECK: %s ... %s\n", claim.c_str(),
              held ? "OK" : "DEVIATES");
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("=====================================================\n");
}

}  // namespace iim::bench
