// Figure 5: RMS error and imputation time vs. the number of complete
// attributes |F|, over CA with 1k incomplete tuples.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  iim::bench::PrintHeader(
      "Figure 5: varying #complete attributes |F| (CA, 1k tuples)",
      "Zhang et al., ICDE 2019, Figure 5");

  const std::vector<std::string> figure_methods = {
      "kNN", "IIM", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"};
  const std::vector<std::string> baselines = {
      "kNN", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"};

  iim::data::Table dataset = iim::bench::LoadDataset("CA");
  std::vector<iim::bench::SweepPoint> points;

  for (size_t f = 5; f <= 8; ++f) {
    iim::eval::ExperimentConfig config;
    config.inject.tuple_count = 1000;
    config.inject.fixed_attr = static_cast<int>(dataset.NumCols() - 1);
    config.num_features = f;
    config.seed = 401;
    auto res = iim::eval::RunComparison(
        dataset, config,
        iim::bench::MethodSuite(baselines, iim::bench::DefaultIimOptions()));
    if (!res.ok()) {
      std::fprintf(stderr, "|F|=%zu: %s\n", f,
                   res.status().ToString().c_str());
      return 1;
    }
    points.push_back({std::to_string(f), std::move(res).value()});
  }

  iim::bench::PrintSweep("|F|", figure_methods, points);
  // CA is sparse+homogeneous: attribute-model methods (GLR) must beat
  // value-copying kNN at every |F| (Figure 5's ordering).
  bool glr_dominates = true;
  for (const auto& p : points) {
    if (!(iim::bench::RmsOf(p.result, "GLR") <
          iim::bench::RmsOf(p.result, "kNN"))) {
      glr_dominates = false;
    }
  }
  iim::bench::ShapeCheck("GLR < kNN at every |F| on CA", glr_dominates);
  // The paper's Figure 5 draws IIM and GLR overlapping on CA; assert the
  // tie within 20%.
  bool iim_competitive = true;
  for (const auto& p : points) {
    if (iim::bench::RmsOf(p.result, "IIM") >
        iim::bench::RmsOf(p.result, "GLR") * 1.2 + 1e-12) {
      iim_competitive = false;
    }
  }
  iim::bench::ShapeCheck("IIM matches/beats GLR (within 20%) at every |F|",
                         iim_competitive);
  return 0;
}
