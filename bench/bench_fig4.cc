// Figure 4: RMS error and imputation time vs. the number of complete
// attributes |F|, over ASF with 100 incomplete tuples.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  iim::bench::PrintHeader(
      "Figure 4: varying #complete attributes |F| (ASF, 100 tuples)",
      "Zhang et al., ICDE 2019, Figure 4");

  const std::vector<std::string> figure_methods = {
      "kNN", "IIM", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"};
  const std::vector<std::string> baselines = {
      "kNN", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"};

  iim::data::Table dataset = iim::bench::LoadDataset("ASF");
  std::vector<iim::bench::SweepPoint> points;
  double iim_first = 0.0, iim_last = 0.0;

  // The incomplete attribute is fixed to the last one so |F| can grow
  // deterministically over the remaining attributes.
  for (size_t f = 2; f <= 5; ++f) {
    iim::eval::ExperimentConfig config;
    config.inject.tuple_count = 100;
    config.inject.fixed_attr = static_cast<int>(dataset.NumCols() - 1);
    config.num_features = f;
    config.seed = 301;
    auto res = iim::eval::RunComparison(
        dataset, config,
        iim::bench::MethodSuite(baselines, iim::bench::DefaultIimOptions()));
    if (!res.ok()) {
      std::fprintf(stderr, "|F|=%zu: %s\n", f,
                   res.status().ToString().c_str());
      return 1;
    }
    double iim = iim::bench::RmsOf(res.value(), "IIM");
    if (f == 2) iim_first = iim;
    iim_last = iim;
    points.push_back({std::to_string(f), std::move(res).value()});
  }

  iim::bench::PrintSweep("|F|", figure_methods, points);
  iim::bench::ShapeCheck("IIM improves with more complete attributes",
                         iim_last <= iim_first + 1e-12);
  bool iim_best_at_full = true;
  for (const auto& name : baselines) {
    if (iim::bench::RmsOf(points.back().result, name) <
        iim::bench::RmsOf(points.back().result, "IIM") * 0.95) {
      iim_best_at_full = false;
    }
  }
  iim::bench::ShapeCheck("IIM (near-)best at the largest |F|",
                         iim_best_at_full);
  return 0;
}
