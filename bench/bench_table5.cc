// Table V: imputation RMS error of IIM vs. the 12 baselines over the seven
// ground-truth datasets, with the measured sparsity (R^2_S) and
// heterogeneity (R^2_H) of each dataset. Protocol: 5% of tuples lose one
// value on a random attribute.

#include <cmath>
#include <cstdio>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "eval/report.h"

namespace {

using iim::bench::DefaultIimOptions;
using iim::bench::LoadDataset;
using iim::bench::MethodSuite;
using iim::bench::RmsOf;

struct DatasetRun {
  std::string name;
  size_t n_override;  // 0 = Table IV size
};

}  // namespace

int main() {
  iim::bench::PrintHeader("Table V: imputation RMS over datasets",
                          "Zhang et al., ICDE 2019, Table V");

  // SN is run at 20k (paper: 100k) to bound bench wall-clock; the method
  // ranking is unaffected (see Figure 6/7 for the n-sensitivity).
  const std::vector<DatasetRun> runs = {
      {"ASF", 0}, {"CA", 0},    {"CCPP", 0}, {"CCS", 0},
      {"DA", 0},  {"PHASE", 0}, {"SN", 20000}};

  std::vector<std::string> baseline_names =
      iim::baselines::AllBaselineNames();
  std::vector<std::string> headers = {"Dataset", "R2_S", "R2_H", "IIM"};
  for (const auto& n : baseline_names) headers.push_back(n);
  iim::eval::TablePrinter table(headers);

  bool iim_always_best_or_close = true;
  bool glr_beats_knn_on_ca = false;

  for (const DatasetRun& run : runs) {
    iim::data::Table dataset = LoadDataset(run.name, run.n_override);
    iim::eval::ExperimentConfig config;
    config.inject.tuple_fraction = 0.05;
    config.seed = 101;

    std::vector<iim::eval::Method> methods;
    for (auto& m : MethodSuite(baseline_names, DefaultIimOptions())) {
      methods.push_back(std::move(m));
    }
    auto res = iim::eval::RunComparison(dataset, config, methods);
    if (!res.ok()) {
      std::fprintf(stderr, "%s: %s\n", run.name.c_str(),
                   res.status().ToString().c_str());
      return 1;
    }

    std::vector<std::string> row = {
        run.name, iim::eval::FormatMetric(res.value().r2_sparsity, 2),
        iim::eval::FormatMetric(res.value().r2_heterogeneity, 2)};
    double iim = RmsOf(res.value(), "IIM");
    row.push_back(iim::eval::FormatMetric(iim, 3));
    double best_other = 1e300;
    for (const auto& name : baseline_names) {
      double rms = RmsOf(res.value(), name);
      row.push_back(iim::eval::FormatMetric(rms, 3));
      if (std::isfinite(rms)) best_other = std::min(best_other, rms);
    }
    table.AddRow(row);

    if (!(iim <= best_other * 1.15 + 1e-12)) {
      iim_always_best_or_close = false;
    }
    if (run.name == "CA") {
      glr_beats_knn_on_ca =
          RmsOf(res.value(), "GLR") < RmsOf(res.value(), "kNN");
    }
  }

  std::printf("%s", table.ToString().c_str());
  iim::bench::ShapeCheck(
      "IIM shows the lowest (or within 15% of lowest) RMS on every dataset",
      iim_always_best_or_close);
  iim::bench::ShapeCheck(
      "CA (sparse, homogeneous): GLR beats kNN, as in Table V",
      glr_beats_knn_on_ca);
  return 0;
}
