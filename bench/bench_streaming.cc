// Streaming engine bench: per-arrival online update vs. full relearn,
// and sliding-window eviction vs. relearning the window.
//
// Phase 1 builds an OnlineIim over n ingested tuples, then measures the
// cost of serving one more arrival online — Ingest (neighbor-order
// maintenance) plus an imputation that forces the lazy model solves the
// arrival dirtied — against the batch alternative: refit IimImputer from
// scratch on the same snapshot and impute once.
//
// Phase 2 does the same for retirement: a second engine with
// window_size = n streams further arrivals (each auto-evicting the
// oldest tuple: order repair, ridge down-date or restream, tombstone),
// then times explicit Evict calls in isolation against the batch
// alternative — relearning the n-tuple window from scratch.
//
// The acceptance bars at n = 10k: >= 10x per-arrival advantage, and
// per-eviction >= 10x cheaper than a window relearn. Results are written
// as JSON for BENCH_streaming.json.
//
//   ./bench_streaming [n] [arrivals] [out.json]
//
// Exit status: 0 when the shape checks hold, 1 otherwise.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/stopwatch.h"
#include "core/iim_imputer.h"
#include "datasets/generator.h"
#include "stream/online_iim.h"

namespace {

double Mean(const std::vector<double>& xs) {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return xs.empty() ? 0.0 : acc / static_cast<double>(xs.size());
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 10000;
  size_t arrivals = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 50;
  const char* out_path = argc > 3 ? argv[3] : "BENCH_streaming.json";
  // Full refits are expensive by design; a handful of repetitions is
  // plenty for a mean.
  size_t refits = n >= 5000 ? 3 : 5;

  iim::datasets::DatasetSpec spec;
  spec.name = "stream-bench";
  spec.n = n + arrivals;
  spec.m = 5;
  spec.regimes = 6;
  spec.exogenous = 2;
  spec.divergence = 0.8;
  spec.noise = 0.1;
  auto gen = iim::datasets::Generate(spec, /*seed=*/4242);
  if (!gen.ok()) {
    std::fprintf(stderr, "generate: %s\n", gen.status().ToString().c_str());
    return 1;
  }
  const iim::data::Table& data = gen.value().table;
  const int target = 4;
  const std::vector<int> features = {0, 1, 2, 3};

  iim::core::IimOptions opt;
  opt.k = 5;
  opt.ell = 10;
  auto engine =
      iim::stream::OnlineIim::Create(data.schema(), target, features, opt);
  if (!engine.ok()) {
    std::fprintf(stderr, "create: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  iim::stream::OnlineIim& online = *engine.value();

  iim::Stopwatch timer;
  for (size_t i = 0; i < n; ++i) {
    iim::Status st = online.Ingest(data.Row(i));
    if (!st.ok()) {
      std::fprintf(stderr, "ingest %zu: %s\n", i, st.ToString().c_str());
      return 1;
    }
  }
  double build_seconds = timer.ElapsedSeconds();

  // A recurring probe whose imputation forces the engine to surface any
  // model work an arrival left pending (the lazy solves are part of the
  // per-arrival cost, not hidden from it).
  std::vector<double> probe_row = data.Row(n).ToVector();
  probe_row[static_cast<size_t>(target)] =
      std::numeric_limits<double>::quiet_NaN();
  iim::data::RowView probe(probe_row.data(), probe_row.size());

  // Online: ingest one arrival + impute, per arrival.
  std::vector<double> online_seconds;
  online_seconds.reserve(arrivals);
  for (size_t a = 0; a < arrivals; ++a) {
    timer.Restart();
    iim::Status st = online.Ingest(data.Row(n + a));
    if (!st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return 1;
    }
    iim::Result<double> v = online.ImputeOne(probe);
    if (!v.ok()) {
      std::fprintf(stderr, "impute: %s\n", v.status().ToString().c_str());
      return 1;
    }
    online_seconds.push_back(timer.ElapsedSeconds());
  }

  // Batch: the same arrival served by a from-scratch relearn on the final
  // snapshot (what a non-streaming deployment would have to do).
  std::vector<double> relearn_seconds;
  relearn_seconds.reserve(refits);
  double check_online = 0.0, check_batch = 0.0;
  for (size_t r = 0; r < refits; ++r) {
    timer.Restart();
    iim::core::IimImputer batch(opt);
    iim::Status st = batch.Fit(online.table(), target, features);
    if (!st.ok()) {
      std::fprintf(stderr, "fit: %s\n", st.ToString().c_str());
      return 1;
    }
    iim::Result<double> v = batch.ImputeOne(probe);
    if (!v.ok()) {
      std::fprintf(stderr, "batch impute: %s\n",
                   v.status().ToString().c_str());
      return 1;
    }
    relearn_seconds.push_back(timer.ElapsedSeconds());
    check_batch = v.value();
  }
  {
    iim::Result<double> v = online.ImputeOne(probe);
    if (!v.ok()) return 1;
    check_online = v.value();
  }

  double online_mean = Mean(online_seconds);
  double relearn_mean = Mean(relearn_seconds);
  double speedup = online_mean > 0.0 ? relearn_mean / online_mean : 0.0;
  bool identical = check_online == check_batch;
  bool fast_enough = speedup >= 10.0;

  // Phase 2: sliding window. A second engine capped at window_size = n
  // streams the same arrivals; each ingest now also retires the oldest
  // tuple (learning-order repair + ridge down-date/restream + index
  // tombstone). Explicit Evict calls are then timed in isolation against
  // the batch alternative: relearning the n-tuple window from scratch.
  iim::core::IimOptions wopt = opt;
  wopt.window_size = n;
  auto wengine =
      iim::stream::OnlineIim::Create(data.schema(), target, features, wopt);
  if (!wengine.ok()) {
    std::fprintf(stderr, "create windowed: %s\n",
                 wengine.status().ToString().c_str());
    return 1;
  }
  iim::stream::OnlineIim& windowed = *wengine.value();
  for (size_t i = 0; i < n; ++i) {
    iim::Status st = windowed.Ingest(data.Row(i));
    if (!st.ok()) {
      std::fprintf(stderr, "windowed ingest %zu: %s\n", i,
                   st.ToString().c_str());
      return 1;
    }
  }

  std::vector<double> windowed_seconds;
  windowed_seconds.reserve(arrivals);
  for (size_t a = 0; a < arrivals; ++a) {
    timer.Restart();
    iim::Status st = windowed.Ingest(data.Row(n + a));
    if (!st.ok()) {
      std::fprintf(stderr, "windowed ingest: %s\n", st.ToString().c_str());
      return 1;
    }
    iim::Result<double> v = windowed.ImputeOne(probe);
    if (!v.ok()) {
      std::fprintf(stderr, "windowed impute: %s\n",
                   v.status().ToString().c_str());
      return 1;
    }
    windowed_seconds.push_back(timer.ElapsedSeconds());
  }

  // Isolated evictions: the oldest live arrivals are [arrivals, ...) after
  // the windowed stream retired the first `arrivals` of them. First solve
  // models around each soon-to-be-evicted tuple (a live deployment serves
  // imputations continuously), so the timed evictions repair real folds —
  // the rank-1 down-date path — rather than only unfolded lazy state.
  size_t evict_reps = std::min<size_t>(arrivals, 25);
  for (size_t e = 0; e < evict_reps; ++e) {
    std::vector<double> warm_row = data.Row(arrivals + e).ToVector();
    warm_row[static_cast<size_t>(target)] =
        std::numeric_limits<double>::quiet_NaN();
    iim::data::RowView warm(warm_row.data(), warm_row.size());
    iim::Result<double> v = windowed.ImputeOne(warm);
    if (!v.ok()) {
      std::fprintf(stderr, "warm impute: %s\n",
                   v.status().ToString().c_str());
      return 1;
    }
  }
  std::vector<double> evict_seconds;
  evict_seconds.reserve(evict_reps);
  for (size_t e = 0; e < evict_reps; ++e) {
    timer.Restart();
    iim::Status st = windowed.Evict(arrivals + e);
    if (!st.ok()) {
      std::fprintf(stderr, "evict: %s\n", st.ToString().c_str());
      return 1;
    }
    evict_seconds.push_back(timer.ElapsedSeconds());
  }

  // Batch alternative: relearn the live window from scratch.
  std::vector<double> window_relearn_seconds;
  window_relearn_seconds.reserve(refits);
  double check_windowed_batch = 0.0;
  for (size_t r = 0; r < refits; ++r) {
    timer.Restart();
    iim::core::IimImputer wbatch(wopt);
    iim::Status st = wbatch.Fit(windowed.table(), target, features);
    if (!st.ok()) {
      std::fprintf(stderr, "window fit: %s\n", st.ToString().c_str());
      return 1;
    }
    iim::Result<double> v = wbatch.ImputeOne(probe);
    if (!v.ok()) {
      std::fprintf(stderr, "window batch impute: %s\n",
                   v.status().ToString().c_str());
      return 1;
    }
    window_relearn_seconds.push_back(timer.ElapsedSeconds());
    check_windowed_batch = v.value();
  }
  double check_windowed = 0.0;
  {
    iim::Result<double> v = windowed.ImputeOne(probe);
    if (!v.ok()) return 1;
    check_windowed = v.value();
  }

  double windowed_mean = Mean(windowed_seconds);
  double evict_mean = Mean(evict_seconds);
  double window_relearn_mean = Mean(window_relearn_seconds);
  double evict_speedup =
      evict_mean > 0.0 ? window_relearn_mean / evict_mean : 0.0;
  // Down-dated accumulators reorder the floating-point summation, so the
  // windowed engine matches the batch refit tightly, not bitwise.
  double wscale = std::max(1.0, std::fabs(check_windowed_batch));
  bool windowed_matches =
      std::fabs(check_windowed - check_windowed_batch) <= 1e-7 * wscale;
  bool evict_fast_enough = evict_speedup >= 10.0;

  std::printf("n=%zu arrivals=%zu (initial build %.3f s)\n", n, arrivals,
              build_seconds);
  std::printf("%-34s %12.6f ms\n", "online per-arrival (ingest+impute)",
              online_mean * 1e3);
  std::printf("%-34s %12.6f ms\n", "full relearn per arrival",
              relearn_mean * 1e3);
  std::printf("%-34s %12.1fx\n", "speedup", speedup);
  const auto& stats = online.stats();
  std::printf("engine: %zu prefix appends, %zu invalidations, %zu lazy "
              "solves; index tree over %zu/%zu (%zu rebuilds)\n",
              stats.fast_path_appends, stats.models_invalidated,
              stats.models_solved, online.index().tree_size(),
              online.index().size(), online.index().rebuilds());
  std::printf("\nsliding window (window_size = n):\n");
  std::printf("%-34s %12.6f ms\n", "windowed per-arrival (+auto-evict)",
              windowed_mean * 1e3);
  std::printf("%-34s %12.6f ms\n", "explicit eviction", evict_mean * 1e3);
  std::printf("%-34s %12.6f ms\n", "window relearn", window_relearn_mean * 1e3);
  std::printf("%-34s %12.1fx\n", "eviction speedup", evict_speedup);
  const auto& wstats = windowed.stats();
  std::printf("windowed engine: %zu evictions (%zu down-dates, %zu restream "
              "fallbacks, %zu backfills, %zu compactions)\n",
              wstats.evicted, wstats.downdates, wstats.downdate_fallbacks,
              wstats.backfills, wstats.compactions);
  std::printf("SHAPE CHECK: online update >= 10x full relearn and "
              "bit-identical to batch ... %s\n",
              fast_enough && identical ? "OK" : "DEVIATES");
  std::printf("SHAPE CHECK: eviction >= 10x cheaper than window relearn and "
              "windowed matches batch refit ... %s\n",
              evict_fast_enough && windowed_matches ? "OK" : "DEVIATES");

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"bench_streaming\",\n"
               "  \"n\": %zu,\n"
               "  \"arrivals\": %zu,\n"
               "  \"initial_build_seconds\": %.6f,\n"
               "  \"online_per_arrival_seconds\": %.9f,\n"
               "  \"full_relearn_seconds\": %.9f,\n"
               "  \"speedup\": %.1f,\n"
               "  \"bit_identical_to_batch\": %s,\n"
               "  \"fast_path_appends\": %zu,\n"
               "  \"models_invalidated\": %zu,\n"
               "  \"models_solved\": %zu,\n"
               "  \"kdtree_rebuilds\": %zu,\n"
               "  \"windowed_per_arrival_seconds\": %.9f,\n"
               "  \"eviction_seconds\": %.9f,\n"
               "  \"window_relearn_seconds\": %.9f,\n"
               "  \"eviction_speedup\": %.1f,\n"
               "  \"windowed_matches_batch_refit\": %s,\n"
               "  \"evictions\": %zu,\n"
               "  \"downdates\": %zu,\n"
               "  \"downdate_fallbacks\": %zu,\n"
               "  \"backfills\": %zu,\n"
               "  \"compactions\": %zu\n"
               "}\n",
               n, arrivals, build_seconds, online_mean, relearn_mean, speedup,
               identical ? "true" : "false", stats.fast_path_appends,
               stats.models_invalidated, stats.models_solved,
               online.index().rebuilds(), windowed_mean, evict_mean,
               window_relearn_mean, evict_speedup,
               windowed_matches ? "true" : "false", wstats.evicted,
               wstats.downdates, wstats.downdate_fallbacks, wstats.backfills,
               wstats.compactions);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return fast_enough && identical && evict_fast_enough && windowed_matches
             ? 0
             : 1;
}
