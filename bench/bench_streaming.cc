// Streaming engine bench: per-arrival online update vs. full relearn,
// sliding-window eviction vs. relearning the window, and — the tail-
// latency story — per-arrival ingest percentiles with the KD-tree
// rebuild in-lock (baseline) vs. on the background builder.
//
// Phase 0 ingests the same n-tuple stream twice and records EVERY
// per-arrival ingest latency, including the arrivals that trigger a
// KD-tree rebuild: once with background_rebuild off (the tree is built
// inside Append under the writer lock — the pre-overhaul behavior) and
// once with the double-buffered background rebuild. Means hide the
// rebuild spikes entirely (they are ~5 arrivals out of 10k), so the
// comparison is made at p50/p99/p99.9/max.
//
// Phase 1 measures the cost of serving one more arrival online — Ingest
// (neighbor-order maintenance) plus an imputation that forces the lazy
// model solves the arrival dirtied — against the batch alternative:
// refit IimImputer from scratch on the same snapshot and impute once.
//
// Phase 2 does the same for retirement at TWO window sizes (n and n/2):
// engines with window_size = w stream further arrivals (each
// auto-evicting the oldest tuple), then explicit Evict calls are timed
// in isolation. The reverse-neighbor postings make eviction O(l), so the
// per-eviction cost must NOT scale with the window — the two-window
// ratio in the JSON is the evidence. The batch alternative (relearning
// the n-tuple window) is timed at w = n.
//
// Phase 3 measures sharded ingestion (ShardedOnlineIim) at S = 1, 2, 4,
// 8: the same n-row stream is ingested through S shards (IngestBatch
// chunks, per-shard parallel apply), then a probe set is imputed through
// the cross-shard scatter/gather merge. The scaling gate runs with the
// shard engines' admission bound OFF: there each arrival's learning-order
// maintenance loop scans only its own shard's residents, an O(n/S) work
// cut, not a parallelism trick. (With the bound on — the deployment
// default, reported alongside — per-arrival work is already sublinear
// and the single-core sharding win converges toward 1x; the wrapper's
// global core always prunes in both regimes.) Query results must be
// IDENTICAL at every S
// and to a plain OnlineIim over the same rows (the merge reproduces the
// global neighbor sets bit for bit). Steady-state query latency is
// compared against that single engine: the wrapper's global models are
// maintained incrementally by its order-maintenance core, so a sharded
// query pays only the fan-out + merge on top of the same clean-model
// predicts — NOT a refit of every neighbor model per quiescent span (the
// regression this gate pins at p50 <= 3x the single engine).
//
// Phase 4 measures the durability tax: the same n-row ingest with the
// write-ahead log and periodic background snapshots on, compared at
// p50/p99 against the persistence-off profile (the checkpoint "pause" is
// only the in-memory serialize — the file write is backgrounded), plus
// recovery wall-clock cells at three log-tail lengths (~n/10, ~n/2, n)
// showing recovery scales with the tail, not the total history.
//
// Phase 5 meters the fail-point tax. The WAL append/fsync fail points
// ride the per-arrival durable path and are compiled into every build;
// the contract (common/failpoint.h) is that inactive points are free.
// One cell times the disarmed Inject call itself (a relaxed atomic load
// and a predictable branch); the other re-runs the phase-4 durable
// ingest with the hot-path points ARMED at probability 0 — every
// arrival then pays the full registry slow path without a single fire,
// the worst case for points that never act — and the p50 must stay
// within noise of the disarmed profile. The armed point's hit counter
// doubles as coverage proof: a gate over a path the points are not on
// would be vacuous.
//
// Phase 6 meters the masking-one-out monitoring tax: the same n-row
// ingest with moo_sample_rate at the documented 1% deployment trickle,
// against a fresh monitoring-off profile run back-to-back so machine
// drift across the earlier phases cannot tilt the ratio. At 1% the
// median arrival does no holdout work at all, so the ingest p50 must
// stay within 1.05x of the disabled engine (with a small absolute
// floor for machines where both p50s are microseconds of scheduling
// noise); the probe counter doubles as coverage proof.
//
// Phase 0 also carries the admission-bound story: a third ingest profile
// with options.admission_bound off (every arrival scans every live
// order — the pre-overhaul O(n) insertion test) sits next to the pruned
// default, and the steady-state arrivals of phase 1 are metered for the
// orders they actually visit. Two gated cells ride on this: the mean
// affected-orders-per-arrival must stay within 5% of the live count
// (the sublinear-ingest claim), and a dedicated staged-compaction cell
// asserts the worst writer-lock hold inside Compact stays within the
// Append hold gate — the O(n*d) survivor slide runs off the lock now,
// so the lock pays only the O(1) buffer swap.
//
// Tail percentiles are only as honest as their sample counts: the
// online and eviction phases draw at least 1000 samples each regardless
// of the [arrivals] argument (which only sizes the probe pool), and a
// shape check FAILS the run if any p99.9 cell was computed from fewer
// than 1000 samples — the regression that motivated it shipped a JSON
// whose online p99 equaled its max because only 50 arrivals were timed.
//
// The acceptance bars at n = 10k: >= 10x per-arrival advantage,
// per-eviction >= 10x cheaper than a window relearn, (whenever the
// baseline actually rebuilt in-lock) a smaller worst-case ingest with
// the background builder, sharded ingest at S=4 >= 1.3x the S=1
// throughput, sharded query results bitwise unchanged across S, sharded
// steady-state query p50 at S=4 within 3x of the single engine, ingest
// p99 with checkpointing within 2x of checkpointing off, and inactive
// fail points free (disarmed Inject <= 100 ns/call, armed-never-firing
// durable ingest p50 within 1.5x of disarmed), and the 1%
// masking-one-out trickle keeping ingest p50 within 1.05x of
// monitoring off.
// Results are written as JSON for BENCH_streaming.json.
//
//   ./bench_streaming [n] [arrivals] [out.json]
//
// Exit status: 0 when the shape checks hold, 1 otherwise.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/percentile.h"
#include "common/stopwatch.h"
#include "core/iim_imputer.h"
#include "datasets/generator.h"
#include "stream/online_iim.h"
#include "stream/persist/io.h"
#include "stream/sharded_iim.h"

namespace {

double Mean(const std::vector<double>& xs) {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return xs.empty() ? 0.0 : acc / static_cast<double>(xs.size());
}

struct IngestProfile {
  std::unique_ptr<iim::stream::OnlineIim> engine;
  std::vector<double> seconds;  // one entry per arrival
  double total_seconds = 0.0;
};

// Ingests rows [0, count) of `data`, timing every arrival.
IngestProfile BuildEngine(const iim::data::Table& data, int target,
                          const std::vector<int>& features,
                          const iim::core::IimOptions& opt, size_t count) {
  IngestProfile out;
  auto engine =
      iim::stream::OnlineIim::Create(data.schema(), target, features, opt);
  if (!engine.ok()) {
    std::fprintf(stderr, "create: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }
  out.engine = std::move(engine.value());
  out.seconds.reserve(count);
  iim::Stopwatch total;
  iim::Stopwatch timer;
  for (size_t i = 0; i < count; ++i) {
    timer.Restart();
    iim::Status st = out.engine->Ingest(data.Row(i));
    out.seconds.push_back(timer.ElapsedSeconds());
    if (!st.ok()) {
      std::fprintf(stderr, "ingest %zu: %s\n", i, st.ToString().c_str());
      std::exit(1);
    }
  }
  out.total_seconds = total.ElapsedSeconds();
  return out;
}

void PrintLatency(const char* label, const std::vector<double>& seconds) {
  iim::LatencySummary s = iim::Summarize(seconds);
  std::printf("%-34s p50 %9.4f  p99 %9.4f  p99.9 %9.4f  max %9.4f ms\n",
              label, s.p50 * 1e3, s.p99 * 1e3,
              iim::Percentile(seconds, 99.9) * 1e3, s.max * 1e3);
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/iim_bench_persist_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return tmpl;
}

// Removes the snapshot/log files a StateStore left in `dir`, then the
// directory itself.
void WipeStoreDir(const std::string& dir) {
  auto names = iim::stream::persist::ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : names.value()) {
      (void)iim::stream::persist::RemoveFile(dir + "/" + name);
    }
  }
  ::rmdir(dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 10000;
  size_t arrivals = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 50;
  const char* out_path = argc > 3 ? argv[3] : "BENCH_streaming.json";
  // Full refits are expensive by design; a handful of repetitions is
  // plenty for a mean.
  size_t refits = n >= 5000 ? 3 : 5;
  // Percentile sample floors. [arrivals] sizes only the probe pool; the
  // timed online and eviction phases draw at least 1000 samples each so
  // the p99/p99.9 cells are real percentiles, not the sample max.
  size_t online_reps = std::max<size_t>(arrivals, 1000);
  size_t evict_reps = std::min<size_t>(online_reps, n / 2 > 200 ? n / 2 - 200
                                                                : n / 4);

  iim::datasets::DatasetSpec spec;
  spec.name = "stream-bench";
  spec.n = n + online_reps;
  spec.m = 5;
  spec.regimes = 6;
  spec.exogenous = 2;
  spec.divergence = 0.8;
  spec.noise = 0.1;
  auto gen = iim::datasets::Generate(spec, /*seed=*/4242);
  if (!gen.ok()) {
    std::fprintf(stderr, "generate: %s\n", gen.status().ToString().c_str());
    return 1;
  }
  const iim::data::Table& data = gen.value().table;
  const int target = 4;
  const std::vector<int> features = {0, 1, 2, 3};

  iim::core::IimOptions opt;
  opt.k = 5;
  opt.ell = 10;

  // Phase 0: ingest tail latency, in-lock rebuild vs. background rebuild.
  iim::core::IimOptions inlock_opt = opt;
  inlock_opt.background_rebuild = false;
  IngestProfile inlock = BuildEngine(data, target, features, inlock_opt, n);
  iim::stream::DynamicIndex::Stats inlock_istats =
      inlock.engine->index().stats();
  inlock.engine.reset();  // only its latency profile is needed

  IngestProfile built = BuildEngine(data, target, features, opt, n);
  iim::stream::OnlineIim& online = *built.engine;
  online.WaitForIndexRebuild();  // flush before phase 1 reads

  // The pre-overhaul insertion test: every arrival scans every live
  // learning order. Same engine, same stream, admission bound off — the
  // profile the pruned default is compared against.
  iim::core::IimOptions fullscan_opt = opt;
  fullscan_opt.admission_bound = false;
  IngestProfile fullscan = BuildEngine(data, target, features, fullscan_opt, n);
  fullscan.engine.reset();  // only its latency profile is needed

  iim::LatencySummary ingest_inlock = iim::Summarize(inlock.seconds);
  double ingest_inlock_p999 = iim::Percentile(inlock.seconds, 99.9);
  iim::LatencySummary ingest_bg = iim::Summarize(built.seconds);
  double ingest_bg_p999 = iim::Percentile(built.seconds, 99.9);
  iim::LatencySummary ingest_fullscan = iim::Summarize(fullscan.seconds);
  double admission_speedup_p50 =
      ingest_bg.p50 > 0.0 ? ingest_fullscan.p50 / ingest_bg.p50 : 0.0;

  // A recurring probe whose imputation forces the engine to surface any
  // model work an arrival left pending (the lazy solves are part of the
  // per-arrival cost, not hidden from it).
  std::vector<double> probe_row = data.Row(n).ToVector();
  probe_row[static_cast<size_t>(target)] =
      std::numeric_limits<double>::quiet_NaN();
  iim::data::RowView probe(probe_row.data(), probe_row.size());

  // Phase 1: ingest one arrival + impute, per arrival, online. The
  // steady-state arrivals are also metered for admission-bound work:
  // counter deltas over this phase give the mean orders an arrival
  // actually visits against the live count it would have scanned.
  iim::stream::OnlineIim::Stats admission_before = online.stats();
  iim::Stopwatch timer;
  std::vector<double> online_seconds;
  online_seconds.reserve(online_reps);
  for (size_t a = 0; a < online_reps; ++a) {
    timer.Restart();
    iim::Status st = online.Ingest(data.Row(n + a));
    if (!st.ok()) {
      std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
      return 1;
    }
    iim::Result<double> v = online.ImputeOne(probe);
    if (!v.ok()) {
      std::fprintf(stderr, "impute: %s\n", v.status().ToString().c_str());
      return 1;
    }
    online_seconds.push_back(timer.ElapsedSeconds());
  }

  // The sublinear-ingest gate: mean orders visited per steady-state
  // arrival vs the live orders a full scan would touch. 5% is a loose
  // ceiling — the affected set is the orders whose worst kept distance
  // the arrival beats, typically a few dozen at n = 10k.
  iim::stream::OnlineIim::Stats admission_after = online.stats();
  double mean_orders_scanned =
      static_cast<double>(admission_after.orders_scanned -
                          admission_before.orders_scanned) /
      static_cast<double>(online_reps);
  double mean_orders_admitted =
      static_cast<double>(admission_after.orders_admitted -
                          admission_before.orders_admitted) /
      static_cast<double>(online_reps);
  double live_at_end = static_cast<double>(online.size());
  double affected_fraction =
      live_at_end > 0.0 ? mean_orders_scanned / live_at_end : 0.0;
  bool affected_ok = live_at_end < 1000.0 || affected_fraction <= 0.05;

  // Batch: the same arrival served by a from-scratch relearn on the final
  // snapshot (what a non-streaming deployment would have to do).
  std::vector<double> relearn_seconds;
  relearn_seconds.reserve(refits);
  double check_online = 0.0, check_batch = 0.0;
  for (size_t r = 0; r < refits; ++r) {
    timer.Restart();
    iim::core::IimImputer batch(opt);
    iim::Status st = batch.Fit(online.table(), target, features);
    if (!st.ok()) {
      std::fprintf(stderr, "fit: %s\n", st.ToString().c_str());
      return 1;
    }
    iim::Result<double> v = batch.ImputeOne(probe);
    if (!v.ok()) {
      std::fprintf(stderr, "batch impute: %s\n",
                   v.status().ToString().c_str());
      return 1;
    }
    relearn_seconds.push_back(timer.ElapsedSeconds());
    check_batch = v.value();
  }
  {
    iim::Result<double> v = online.ImputeOne(probe);
    if (!v.ok()) return 1;
    check_online = v.value();
  }

  double online_mean = Mean(online_seconds);
  iim::LatencySummary online_lat = iim::Summarize(online_seconds);
  double relearn_mean = Mean(relearn_seconds);
  double speedup = online_mean > 0.0 ? relearn_mean / online_mean : 0.0;
  bool identical = check_online == check_batch;
  bool fast_enough = speedup >= 10.0;

  // Phase 2: sliding windows at w = n and w = n/2. Engines capped at
  // window_size = w stream `online_reps` past the cap (each ingest retiring
  // the oldest tuple: learning-order repair via the reverse-neighbor
  // postings + ridge down-date/restream + index tombstone). Explicit
  // Evict calls are then timed in isolation; comparing the two windows
  // shows whether eviction cost scales with the window.
  auto run_window = [&](size_t w, std::vector<double>* arrival_seconds,
                        std::vector<double>* evict_seconds)
      -> std::unique_ptr<iim::stream::OnlineIim> {
    iim::core::IimOptions wopt = opt;
    wopt.window_size = w;
    IngestProfile wp = BuildEngine(data, target, features, wopt, w);
    iim::stream::OnlineIim& windowed = *wp.engine;
    iim::Stopwatch wtimer;
    for (size_t a = 0; a < online_reps; ++a) {
      wtimer.Restart();
      iim::Status st = windowed.Ingest(data.Row(w + a));
      if (!st.ok()) {
        std::fprintf(stderr, "windowed ingest: %s\n", st.ToString().c_str());
        std::exit(1);
      }
      iim::Result<double> v = windowed.ImputeOne(probe);
      if (!v.ok()) {
        std::fprintf(stderr, "windowed impute: %s\n",
                     v.status().ToString().c_str());
        std::exit(1);
      }
      arrival_seconds->push_back(wtimer.ElapsedSeconds());
    }
    // First solve models around each soon-to-be-evicted tuple (a live
    // deployment serves imputations continuously), so the timed
    // evictions repair real folds — the rank-1 down-date path — rather
    // than only unfolded lazy state.
    for (size_t e = 0; e < evict_reps; ++e) {
      std::vector<double> warm_row = data.Row(online_reps + e).ToVector();
      warm_row[static_cast<size_t>(target)] =
          std::numeric_limits<double>::quiet_NaN();
      iim::data::RowView warm(warm_row.data(), warm_row.size());
      iim::Result<double> v = windowed.ImputeOne(warm);
      if (!v.ok()) {
        std::fprintf(stderr, "warm impute: %s\n",
                     v.status().ToString().c_str());
        std::exit(1);
      }
    }
    for (size_t e = 0; e < evict_reps; ++e) {
      wtimer.Restart();
      iim::Status st = windowed.Evict(online_reps + e);
      if (!st.ok()) {
        std::fprintf(stderr, "evict: %s\n", st.ToString().c_str());
        std::exit(1);
      }
      evict_seconds->push_back(wtimer.ElapsedSeconds());
    }
    return std::move(wp.engine);
  };

  std::vector<double> windowed_seconds, evict_seconds;
  std::unique_ptr<iim::stream::OnlineIim> wengine =
      run_window(n, &windowed_seconds, &evict_seconds);
  iim::stream::OnlineIim& windowed = *wengine;
  std::vector<double> half_arrival_seconds, half_evict_seconds;
  size_t n_half = n / 2;
  std::unique_ptr<iim::stream::OnlineIim> hengine =
      run_window(n_half, &half_arrival_seconds, &half_evict_seconds);

  // Batch alternative: relearn the live window from scratch (at w = n).
  std::vector<double> window_relearn_seconds;
  window_relearn_seconds.reserve(refits);
  double check_windowed_batch = 0.0;
  iim::core::IimOptions wopt = opt;
  wopt.window_size = n;
  for (size_t r = 0; r < refits; ++r) {
    timer.Restart();
    iim::core::IimImputer wbatch(wopt);
    iim::Status st = wbatch.Fit(windowed.table(), target, features);
    if (!st.ok()) {
      std::fprintf(stderr, "window fit: %s\n", st.ToString().c_str());
      return 1;
    }
    iim::Result<double> v = wbatch.ImputeOne(probe);
    if (!v.ok()) {
      std::fprintf(stderr, "window batch impute: %s\n",
                   v.status().ToString().c_str());
      return 1;
    }
    window_relearn_seconds.push_back(timer.ElapsedSeconds());
    check_windowed_batch = v.value();
  }
  double check_windowed = 0.0;
  {
    iim::Result<double> v = windowed.ImputeOne(probe);
    if (!v.ok()) return 1;
    check_windowed = v.value();
  }

  double windowed_mean = Mean(windowed_seconds);
  iim::LatencySummary windowed_lat = iim::Summarize(windowed_seconds);
  double evict_mean = Mean(evict_seconds);
  iim::LatencySummary evict_lat = iim::Summarize(evict_seconds);
  double half_evict_mean = Mean(half_evict_seconds);
  double evict_window_ratio =
      half_evict_mean > 0.0 ? evict_mean / half_evict_mean : 0.0;
  double window_relearn_mean = Mean(window_relearn_seconds);
  double evict_speedup =
      evict_mean > 0.0 ? window_relearn_mean / evict_mean : 0.0;
  // Down-dated accumulators reorder the floating-point summation, so the
  // windowed engine matches the batch refit tightly, not bitwise.
  double wscale = std::max(1.0, std::fabs(check_windowed_batch));
  bool windowed_matches =
      std::fabs(check_windowed - check_windowed_batch) <= 1e-7 * wscale;
  bool evict_fast_enough = evict_speedup >= 10.0;
  iim::stream::DynamicIndex::Stats istats = online.index().stats();
  // The ingest CRITICAL SECTION must shrink once the baseline actually
  // rebuilt under the writer lock (below the KD-tree threshold neither
  // mode builds trees and the comparison is noise). The gate is the
  // worst writer-lock hold inside Append — the quantity the background
  // rebuild bounds by design — because wall-clock per-arrival
  // percentiles conflate it with CPU contention: on a single-core
  // machine the builder thread competes for the same core and the
  // wall-clock spike merely moves, while the lock hold (what blocks
  // concurrent queries and producers) provably drops from O(n log n) to
  // O(1).
  bool tail_check_applies = inlock_istats.rebuilds >= 1;
  bool tail_improved =
      !tail_check_applies ||
      istats.max_append_hold_seconds < inlock_istats.max_append_hold_seconds;

  // Staged-compaction hold cell: a dedicated index carrying n rows drops
  // a third of them and compacts once. The O(n*d) survivor slide is
  // staged under a reader lock, so the writer lock pays only the buffer
  // swap + rebuild launch — gated against the Append hold (the bound the
  // background rebuild already enforces), with a small absolute floor so
  // sub-millisecond scheduling noise cannot flake the gate.
  double compact_hold_seconds = 0.0;
  size_t compact_survivors = 0;
  {
    iim::stream::DynamicIndex cindex(features);
    for (size_t i = 0; i < n; ++i) cindex.Append(data.Row(i));
    cindex.WaitForRebuild();
    for (size_t i = 0; i < n; i += 3) cindex.Remove(i);
    (void)cindex.Compact();
    iim::stream::DynamicIndex::Stats cstats = cindex.stats();
    compact_hold_seconds = cstats.max_compact_hold_seconds;
    compact_survivors = cstats.live;
    cindex.WaitForRebuild();
  }
  const double kCompactHoldFloorSeconds = 0.0005;  // 0.5 ms
  bool compact_hold_ok =
      compact_hold_seconds <=
      std::max(istats.max_append_hold_seconds, kCompactHoldFloorSeconds);

  // Phase 3: sharded ingestion at S = 1, 2, 4, 8. Each engine ingests
  // the same n rows through IngestBatch chunks (the service's coalesced
  // drive), then serves the same probe set through the cross-shard
  // merge. The S=1 wrapper is the apples-to-apples baseline: same code
  // path, no fan-out.
  struct ShardCell {
    size_t shards = 0;
    double ingest_seconds = 0.0;
    double rows_per_sec = 0.0;
    double impute_p50 = 0.0;
    double impute_p99 = 0.0;
    double query_gap = 0.0;  // impute_p50 / single-engine impute_p50
    bool identical = true;
    std::vector<double> values;  // steady-state probe imputations
  };
  const size_t shard_counts[] = {1, 2, 4, 8};
  const size_t kChunk = 512;
  const size_t kShardProbes = 64;

  auto make_probe = [&](size_t p, std::vector<double>* prow) {
    *prow = data.Row(n + p % online_reps).ToVector();
    (*prow)[static_cast<size_t>(target)] =
        std::numeric_limits<double>::quiet_NaN();
  };

  // The query-gap gate runs on a level index footing: the single
  // baseline and the gate's S=4 wrapper share a lowered KD-tree
  // threshold, so n/S-resident shards sit on the same side of the
  // tree/brute boundary as the n-resident single engine. With the
  // default 4096-point threshold the gap conflates two unrelated
  // effects: the fan-out + merge over maintained global models (what
  // the gate pins) and a tree-vs-brute-scan constant for whichever
  // engine happens to straddle the threshold. The throughput cells
  // below keep the default threshold — the O(n/S) maintenance work cut
  // is a brute-tail property, and lowering the threshold everywhere
  // would shrink the very scan the scaling gate measures.
  iim::core::IimOptions qopt = opt;
  qopt.index_kdtree_threshold = 256;

  // The single-engine query baseline the sharded gap is gated against: a
  // plain OnlineIim over the same n rows, probed twice — the first pass
  // pays the lazy model solves (every engine below gets the same warm-up),
  // the second measures steady-state queries against clean maintained
  // models. The gap under test is therefore the scatter/gather fan-out
  // and merge, not first-touch solve cost.
  std::vector<double> single_query_seconds;
  std::vector<double> single_values;
  {
    IngestProfile sp = BuildEngine(data, target, features, qopt, n);
    sp.engine->WaitForIndexRebuild();
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t p = 0; p < kShardProbes; ++p) {
        std::vector<double> prow;
        make_probe(p, &prow);
        iim::data::RowView pv(prow.data(), prow.size());
        timer.Restart();
        iim::Result<double> v = sp.engine->ImputeOne(pv);
        double seconds = timer.ElapsedSeconds();
        if (!v.ok()) {
          std::fprintf(stderr, "single impute: %s\n",
                       v.status().ToString().c_str());
          return 1;
        }
        if (pass == 1) {
          single_query_seconds.push_back(seconds);
          single_values.push_back(v.value());
        }
      }
    }
  }
  iim::LatencySummary single_query = iim::Summarize(single_query_seconds);

  // Two regimes per shard count. The PRUNED cells are the deployment
  // default: every core's arrival scan rides its admission bound, so
  // per-arrival maintenance is already sublinear and sharding's ingest
  // win on one core converges toward 1x — these cells report absolute
  // throughput and pin result identity. The FULL-SCAN cells disable the
  // shard engines' admission bound (the wrapper's global core always
  // prunes — that serial scan was the old 1.7x scaling cap), isolating
  // the O(n/S) maintenance work-cut the scaling gate was built to pin:
  // the shards' insertion scans shrink with S while everything else
  // stays fixed.
  auto run_shard_cell = [&](size_t S, bool admission,
                            size_t passes) -> ShardCell {
    iim::core::IimOptions sopt = opt;
    sopt.shards = S;
    // Deployment cells apply chunks with one worker per shard; the
    // full-scan instrument cells run single-threaded so the measured
    // drop is purely the per-shard work cut, not scheduler noise (this
    // host has one core — S workers only add context switches).
    sopt.threads = admission ? S : 1;
    sopt.admission_bound = admission;
    auto sharded_r = iim::stream::ShardedOnlineIim::Create(
        data.schema(), target, features, sopt);
    if (!sharded_r.ok()) {
      std::fprintf(stderr, "sharded create: %s\n",
                   sharded_r.status().ToString().c_str());
      std::exit(1);
    }
    iim::stream::ShardedOnlineIim& sharded = *sharded_r.value();

    ShardCell cell;
    cell.shards = S;
    iim::Stopwatch stimer;
    std::vector<iim::data::RowView> chunk;
    for (size_t pass = 0; pass < passes; ++pass) {
      for (size_t i = 0; i < n; i += kChunk) {
        chunk.clear();
        for (size_t j = i; j < std::min(n, i + kChunk); ++j) {
          chunk.push_back(data.Row(j));
        }
        for (const iim::Status& st : sharded.IngestBatch(chunk)) {
          if (!st.ok()) {
            std::fprintf(stderr, "sharded ingest: %s\n",
                         st.ToString().c_str());
            std::exit(1);
          }
        }
      }
    }
    cell.ingest_seconds = stimer.ElapsedSeconds();
    cell.rows_per_sec =
        cell.ingest_seconds > 0.0
            ? static_cast<double>(n * passes) / cell.ingest_seconds
            : 0.0;
    sharded.WaitForIndexRebuilds();

    std::vector<double> probe_seconds;
    std::vector<double> values;
    probe_seconds.reserve(kShardProbes);
    values.reserve(kShardProbes);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t p = 0; p < kShardProbes; ++p) {
        std::vector<double> prow;
        make_probe(p, &prow);
        iim::data::RowView pv(prow.data(), prow.size());
        timer.Restart();
        iim::Result<double> v = sharded.ImputeOne(pv);
        double seconds = timer.ElapsedSeconds();
        if (!v.ok()) {
          std::fprintf(stderr, "sharded impute: %s\n",
                       v.status().ToString().c_str());
          std::exit(1);
        }
        if (pass == 1) {
          probe_seconds.push_back(seconds);
          values.push_back(v.value());
        }
      }
    }
    iim::LatencySummary probe_lat = iim::Summarize(probe_seconds);
    cell.impute_p50 = probe_lat.p50;
    cell.impute_p99 = probe_lat.p99;
    // The caller compares against the reference appropriate for the
    // regime (deployment cells vs the single engine; multi-pass
    // instrument cells against each other).
    cell.values = std::move(values);
    return cell;
  };

  std::vector<ShardCell> shard_cells;     // pruned (deployment default)
  std::vector<ShardCell> fullscan_cells;  // shard admission bound off
  for (size_t S : shard_counts) {
    shard_cells.push_back(run_shard_cell(S, /*admission=*/true,
                                         /*passes=*/1));
    // The instrument cells ingest the stream TWICE: the unpruned
    // insertion scan's total work is quadratic in the arrival count, so
    // a second pass quadruples the work-cut term while the fixed
    // per-arrival costs only double — the S=4-vs-S=1 ratio then reflects
    // the O(n/S) cut instead of wrapper constants, and run-to-run noise
    // on the long S=1 cell stops straddling the gate.
    fullscan_cells.push_back(run_shard_cell(S, /*admission=*/false,
                                            /*passes=*/2));
  }
  // Bitwise at EVERY S — and across index configs: the single baseline
  // above runs a different KD-tree threshold, and exactness must not
  // depend on where the tree/brute boundary falls. The two-pass
  // full-scan cells hold a different (doubled) stream, so they pin
  // sharded-vs-single-shard identity against their own S=1 cell; the
  // pruned-vs-unpruned bitwise contract is pinned separately by the
  // admission differential tests.
  for (ShardCell& cell : shard_cells) {
    cell.identical = cell.values == single_values;
  }
  for (ShardCell& cell : fullscan_cells) {
    cell.identical = cell.values == fullscan_cells.front().values;
  }
  double shard_scaling = 0.0;         // full-scan regime: the work cut
  double shard_scaling_pruned = 0.0;  // deployment default, informational
  bool shard_identical = true;
  for (size_t c = 0; c < shard_cells.size(); ++c) {
    if (shard_cells[c].shards == 4) {
      if (fullscan_cells[0].rows_per_sec > 0.0) {
        shard_scaling =
            fullscan_cells[c].rows_per_sec / fullscan_cells[0].rows_per_sec;
      }
      if (shard_cells[0].rows_per_sec > 0.0) {
        shard_scaling_pruned =
            shard_cells[c].rows_per_sec / shard_cells[0].rows_per_sec;
      }
    }
    shard_identical = shard_identical && shard_cells[c].identical &&
                      fullscan_cells[c].identical;
  }
  bool shard_scaling_ok = shard_scaling >= 1.3 && shard_identical;

  // The query-gap gate cell: an S=4 wrapper on the same index footing as
  // the single baseline. The maintained global core keeps sharded
  // queries at fan-out + merge cost over the same clean-model predicts
  // as the single engine — the old wrapper refit every global model per
  // quiescent span and sat ~40x over the baseline here. A small absolute
  // escape hatch keeps the gate meaningful on machines where both p50s
  // are a few microseconds and the ratio is scheduling noise.
  double shard_query_p50_s4 = 0.0;
  double shard_query_p99_s4 = 0.0;
  bool shard_query_identical = true;
  {
    iim::core::IimOptions gopt = qopt;
    gopt.shards = 4;
    gopt.threads = 4;
    auto gated_r = iim::stream::ShardedOnlineIim::Create(
        data.schema(), target, features, gopt);
    if (!gated_r.ok()) {
      std::fprintf(stderr, "gate-cell create: %s\n",
                   gated_r.status().ToString().c_str());
      return 1;
    }
    iim::stream::ShardedOnlineIim& gated = *gated_r.value();
    std::vector<iim::data::RowView> chunk;
    for (size_t i = 0; i < n; i += kChunk) {
      chunk.clear();
      for (size_t j = i; j < std::min(n, i + kChunk); ++j) {
        chunk.push_back(data.Row(j));
      }
      for (const iim::Status& st : gated.IngestBatch(chunk)) {
        if (!st.ok()) {
          std::fprintf(stderr, "gate-cell ingest: %s\n",
                       st.ToString().c_str());
          return 1;
        }
      }
    }
    gated.WaitForIndexRebuilds();
    std::vector<double> gate_seconds;
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t p = 0; p < kShardProbes; ++p) {
        std::vector<double> prow;
        make_probe(p, &prow);
        iim::data::RowView pv(prow.data(), prow.size());
        timer.Restart();
        iim::Result<double> v = gated.ImputeOne(pv);
        double seconds = timer.ElapsedSeconds();
        if (!v.ok()) {
          std::fprintf(stderr, "gate-cell impute: %s\n",
                       v.status().ToString().c_str());
          return 1;
        }
        if (pass == 1) {
          gate_seconds.push_back(seconds);
          shard_query_identical =
              shard_query_identical && v.value() == single_values[p];
        }
      }
    }
    iim::LatencySummary gate_lat = iim::Summarize(gate_seconds);
    shard_query_p50_s4 = gate_lat.p50;
    shard_query_p99_s4 = gate_lat.p99;
  }
  double shard_query_gap =
      single_query.p50 > 0.0 ? shard_query_p50_s4 / single_query.p50 : 0.0;
  const double kQueryGapFloorSeconds = 0.0005;  // 0.5 ms
  bool shard_query_ok =
      (shard_query_gap <= 3.0 ||
       shard_query_p50_s4 <= kQueryGapFloorSeconds) &&
      shard_query_identical;

  // Phase 4: checkpoint pauses and recovery. The same n-row stream is
  // ingested with durability on — every arrival appended to the
  // write-ahead log, a snapshot every n/10 ops — and the per-arrival
  // percentiles are compared against the persistence-off background-
  // rebuild profile from phase 0. Only the in-memory serialize runs on
  // the ingest thread (the file write is backgrounded), so the p99 with
  // checkpointing on must stay within 2x of the p99 with it off (a small
  // absolute floor absorbs machines where both p99s are a few
  // microseconds and the ratio is pure noise). Recovery wall-clock is
  // then measured against the log-tail length: stores checkpointed at
  // different cadences leave tails of ~n, ~n/2 and ~n/10 records, and
  // recovery = newest snapshot restore + tail replay, so the wall-clock
  // must follow the tail, not the total op count.
  size_t snap_every = std::max<size_t>(1, n / 10);
  std::string persist_root = MakeTempDir();

  struct RecoveryCell {
    size_t snapshot_every = 0;
    uint64_t log_tail_ops = 0;
    size_t snapshots_loaded = 0;
    double recovery_seconds = 0.0;
  };
  std::vector<RecoveryCell> recovery_cells;

  iim::core::IimOptions popt = opt;
  popt.persist_dir = persist_root + "/every-" + std::to_string(snap_every);
  popt.snapshot_every = snap_every;
  IngestProfile persisted = BuildEngine(data, target, features, popt, n);
  iim::Status flush_st = persisted.engine->FlushPersistence();
  if (!flush_st.ok()) {
    std::fprintf(stderr, "flush: %s\n", flush_st.ToString().c_str());
    return 1;
  }
  iim::stream::OnlineIim::Stats persist_stats = persisted.engine->stats();
  persisted.engine.reset();  // "crash": only the files survive

  WipeStoreDir(popt.persist_dir);

  iim::LatencySummary ingest_persist = iim::Summarize(persisted.seconds);
  double ingest_persist_p999 = iim::Percentile(persisted.seconds, 99.9);
  const double kCheckpointFloorSeconds = 0.00025;  // 0.25 ms
  bool checkpoint_ok =
      ingest_persist.p99 <=
      std::max(2.0 * ingest_bg.p99, kCheckpointFloorSeconds);

  // Recovery cells at three cadences. The +1 offsets keep the cadence
  // from dividing n exactly — a snapshot landing on the very last op
  // would leave a zero-length tail and say nothing about replay cost.
  std::vector<size_t> cadences = {std::max<size_t>(1, n / 10) + 1,
                                  std::max<size_t>(1, n / 2) + 1, 0};
  for (size_t cadence : cadences) {
    iim::core::IimOptions ropt = opt;
    ropt.persist_dir =
        persist_root + "/every-" + std::to_string(cadence);
    ropt.snapshot_every = cadence;
    {
      IngestProfile rp = BuildEngine(data, target, features, ropt, n);
      iim::Status st = rp.engine->FlushPersistence();
      if (!st.ok()) {
        std::fprintf(stderr, "flush: %s\n", st.ToString().c_str());
        return 1;
      }
      rp.engine.reset();
    }
    timer.Restart();
    auto recovered =
        iim::stream::OnlineIim::Create(data.schema(), target, features, ropt);
    double recovery_seconds = timer.ElapsedSeconds();
    if (!recovered.ok()) {
      std::fprintf(stderr, "recover: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    RecoveryCell cell;
    cell.snapshot_every = cadence;
    cell.log_tail_ops = recovered.value()->stats().log_records_replayed;
    cell.snapshots_loaded = recovered.value()->stats().snapshots_loaded;
    cell.recovery_seconds = recovery_seconds;
    if (recovered.value()->size() != n ||
        recovered.value()->durable_ops() != n) {
      std::fprintf(stderr, "recovery lost state: size %zu durable %llu\n",
                   recovered.value()->size(),
                   static_cast<unsigned long long>(
                       recovered.value()->durable_ops()));
      return 1;
    }
    recovered.value().reset();
    recovery_cells.push_back(cell);
    WipeStoreDir(ropt.persist_dir);
  }
  ::rmdir(persist_root.c_str());

  // Phase 5: the fail-point tax (see the header comment). Disarmed cell
  // first: a tight loop over Inject on a never-armed name. The !ok()
  // branch keeps the compiler from discarding the call.
  iim::fail::DisableAll();
  double failpoint_disarmed_ns = 0.0;
  {
    const size_t kCalls = 2000000;
    timer.Restart();
    for (size_t c = 0; c < kCalls; ++c) {
      iim::Status st = iim::fail::Inject("bench.disarmed");
      if (!st.ok()) return 1;
    }
    failpoint_disarmed_ns =
        timer.ElapsedSeconds() / static_cast<double>(kCalls) * 1e9;
  }

  // Armed-never-firing cell: the phase-4 durable ingest again, with the
  // two points on its per-arrival path armed at probability 0. Every
  // append/fsync now takes the registry slow path (mutex + lookup +
  // trigger evaluation) and returns OK — the cost a deployment pays for
  // leaving instrumentation armed but quiet.
  iim::fail::Spec never_fires;
  never_fires.probability = 0.0;
  iim::fail::Enable("wal.append", never_fires);
  iim::fail::Enable("wal.fsync", never_fires);
  std::string armed_root = MakeTempDir();
  iim::core::IimOptions aopt = opt;
  aopt.persist_dir = armed_root + "/armed";
  aopt.snapshot_every = snap_every;
  IngestProfile armed = BuildEngine(data, target, features, aopt, n);
  iim::Status armed_flush = armed.engine->FlushPersistence();
  if (!armed_flush.ok()) {
    std::fprintf(stderr, "armed flush: %s\n", armed_flush.ToString().c_str());
    return 1;
  }
  armed.engine.reset();
  WipeStoreDir(aopt.persist_dir);
  ::rmdir(armed_root.c_str());
  iim::fail::PointStats append_point = iim::fail::GetStats("wal.append");
  iim::fail::DisableAll();

  iim::LatencySummary ingest_armed = iim::Summarize(armed.seconds);
  double failpoint_overhead_p50 =
      ingest_persist.p50 > 0.0 ? ingest_armed.p50 / ingest_persist.p50 : 0.0;
  // 100 ns is ~50x the measured disarmed cost — the gate catches a
  // registry lookup or lock leaking onto the disarmed path, not cache
  // weather. The p50 slack likewise carries a small absolute floor for
  // machines where both p50s are a few microseconds.
  const double kFailpointFloorSeconds = 0.00001;  // 10 us
  bool failpoint_covered =
      append_point.hits >= static_cast<uint64_t>(n) && append_point.fires == 0;
  bool failpoint_ok =
      failpoint_disarmed_ns <= 100.0 && failpoint_covered &&
      ingest_armed.p50 <= std::max(1.5 * ingest_persist.p50,
                                   ingest_persist.p50 +
                                       kFailpointFloorSeconds);

  // Phase 6: the masking-one-out monitoring tax (see the header
  // comment). A fresh back-to-back pair — monitoring off, then the 1%
  // holdout trickle — on the identical stream and options.
  IngestProfile moo_off = BuildEngine(data, target, features, opt, n);
  iim::core::IimOptions moo_opt = opt;
  moo_opt.moo_sample_rate = 0.01;
  IngestProfile moo_on = BuildEngine(data, target, features, moo_opt, n);
  iim::stream::OnlineIim::Stats moo_stats = moo_on.engine->stats();
  moo_off.engine.reset();
  moo_on.engine.reset();
  iim::LatencySummary ingest_moo_off = iim::Summarize(moo_off.seconds);
  iim::LatencySummary ingest_moo_on = iim::Summarize(moo_on.seconds);
  double moo_overhead_p50 =
      ingest_moo_off.p50 > 0.0 ? ingest_moo_on.p50 / ingest_moo_off.p50 : 0.0;
  // The p50 gate carries the same small absolute floor as the
  // fail-point gate: on machines where both p50s sit at a few
  // microseconds, a 1.05x ratio is scheduling weather, not a tax. The
  // probe counter proves the trickle actually ran — a gate over an
  // engine that never sampled would be vacuous.
  const double kMooFloorSeconds = 0.00001;  // 10 us
  bool moo_covered = moo_stats.moo_probes > 0;
  bool moo_ok =
      moo_covered &&
      ingest_moo_on.p50 <= std::max(1.05 * ingest_moo_off.p50,
                                    ingest_moo_off.p50 + kMooFloorSeconds);

  const auto& stats = online.stats();
  const auto& wstats = windowed.stats();
  iim::stream::DynamicIndex::Stats wistats = windowed.index().stats();
  const auto& hstats = hengine->stats();

  // Every p99.9 cell in the JSON must rest on at least 1000 samples —
  // with fewer, nearest-rank p99 and p99.9 collapse onto the max and the
  // tail story is fiction.
  const size_t kMinTailSamples = 1000;
  bool samples_ok = inlock.seconds.size() >= kMinTailSamples &&
                    built.seconds.size() >= kMinTailSamples &&
                    fullscan.seconds.size() >= kMinTailSamples &&
                    online_seconds.size() >= kMinTailSamples &&
                    windowed_seconds.size() >= kMinTailSamples &&
                    evict_seconds.size() >= kMinTailSamples &&
                    half_evict_seconds.size() >= kMinTailSamples &&
                    persisted.seconds.size() >= kMinTailSamples &&
                    armed.seconds.size() >= kMinTailSamples &&
                    moo_off.seconds.size() >= kMinTailSamples &&
                    moo_on.seconds.size() >= kMinTailSamples;

  std::printf("n=%zu arrivals=%zu (initial build %.3f s in-lock, %.3f s "
              "background)\n",
              n, online_reps, inlock.total_seconds, built.total_seconds);
  std::printf("ingest tail latency over %zu arrivals (%zu in-lock "
              "rebuilds vs %zu background swaps):\n",
              n, inlock_istats.rebuilds, istats.swaps);
  PrintLatency("  in-lock rebuild (baseline)", inlock.seconds);
  PrintLatency("  background rebuild", built.seconds);
  PrintLatency("  admission bound off (full scan)", fullscan.seconds);
  std::printf("%-34s %12.2fx (p50, admission bound on vs off)\n",
              "admission-bound ingest speedup", admission_speedup_p50);
  std::printf("%-34s %12.6f ms -> %.6f ms (worst writer-lock hold in "
              "Append)\n",
              "ingest critical section",
              inlock_istats.max_append_hold_seconds * 1e3,
              istats.max_append_hold_seconds * 1e3);
  std::printf("%-34s %12.6f ms over %zu survivors (staged slide off the "
              "lock)\n",
              "worst writer-lock hold in Compact", compact_hold_seconds * 1e3,
              compact_survivors);
  std::printf("%-34s %12.6f ms\n", "online per-arrival (ingest+impute)",
              online_mean * 1e3);
  PrintLatency("  per-arrival percentiles", online_seconds);
  std::printf("%-34s %12.6f ms\n", "full relearn per arrival",
              relearn_mean * 1e3);
  std::printf("%-34s %12.1fx\n", "speedup", speedup);
  std::printf("engine: %zu prefix appends, %zu invalidations, %zu lazy "
              "solves; index tree over %zu/%zu (%zu rebuilds: %zu "
              "launched, %zu swapped, %zu discarded)\n",
              stats.fast_path_appends, stats.models_invalidated,
              stats.models_solved, istats.tree_size, istats.live,
              istats.rebuilds, istats.launches, istats.swaps,
              istats.discarded);
  std::printf("admission bound: %.1f orders visited / %.1f admitted per "
              "steady-state arrival over %.0f live (%.2f%% of a full "
              "scan; %zu skips lifetime)\n",
              mean_orders_scanned, mean_orders_admitted, live_at_end,
              affected_fraction * 100.0, stats.admission_skips);
  std::printf("\nsliding window (window_size = n):\n");
  std::printf("%-34s %12.6f ms\n", "windowed per-arrival (+auto-evict)",
              windowed_mean * 1e3);
  PrintLatency("  per-arrival percentiles", windowed_seconds);
  std::printf("%-34s %12.6f ms\n", "explicit eviction", evict_mean * 1e3);
  PrintLatency("  per-eviction percentiles", evict_seconds);
  std::printf("%-34s %12.6f ms (window %zu)\n", "explicit eviction",
              half_evict_mean * 1e3, n_half);
  iim::stream::DynamicIndex::Stats histats = hengine->index().stats();
  std::printf("%-34s %12.2fx (1.0 = flat in window size; backfill cost "
              "follows the brute-force tail — %zu vs %zu points — not the "
              "window)\n",
              "eviction cost ratio n vs n/2", evict_window_ratio,
              wistats.tail_size, histats.tail_size);
  std::printf("%-34s %12.6f ms\n", "window relearn", window_relearn_mean * 1e3);
  std::printf("%-34s %12.1fx\n", "eviction speedup", evict_speedup);
  std::printf("windowed engine: %zu evictions (%zu down-dates, %zu restream "
              "fallbacks, %zu backfills, %zu compactions, %zu postings "
              "edges live)\n",
              wstats.evicted, wstats.downdates, wstats.downdate_fallbacks,
              wstats.backfills, wstats.compactions, wstats.postings_edges);
  std::printf("SHAPE CHECK: online update >= 10x full relearn and "
              "bit-identical to batch ... %s\n",
              fast_enough && identical ? "OK" : "DEVIATES");
  std::printf("SHAPE CHECK: eviction >= 10x cheaper than window relearn and "
              "windowed matches batch refit ... %s\n",
              evict_fast_enough && windowed_matches ? "OK" : "DEVIATES");
  std::printf("\nsharded ingestion (S = 1, 2, 4, 8; %zu-row chunks; "
              "admission bound on — deployment default):\n",
              kChunk);
  for (const ShardCell& cell : shard_cells) {
    std::printf("  S=%zu  ingest %8.3f s (%9.0f rows/s)  impute p50 "
                "%8.4f ms  p99 %8.4f ms  results %s\n",
                cell.shards, cell.ingest_seconds, cell.rows_per_sec,
                cell.impute_p50 * 1e3, cell.impute_p99 * 1e3,
                cell.identical ? "identical" : "DIVERGED");
  }
  std::printf("sharded ingestion, shard insertion scans UNPRUNED, stream "
              "ingested twice (the O(n/S) work-cut regime the scaling "
              "gate pins):\n");
  for (const ShardCell& cell : fullscan_cells) {
    std::printf("  S=%zu  ingest %8.3f s (%9.0f rows/s)  results %s\n",
                cell.shards, cell.ingest_seconds, cell.rows_per_sec,
                cell.identical ? "identical" : "DIVERGED");
  }
  std::printf("steady-state query gap on a level index footing (KD-tree "
              "threshold %zu for both):\n",
              qopt.index_kdtree_threshold);
  std::printf("  single engine p50 %8.4f ms  p99 %8.4f ms\n",
              single_query.p50 * 1e3, single_query.p99 * 1e3);
  std::printf("  S=4 wrapper   p50 %8.4f ms  p99 %8.4f ms  gap %5.2fx  "
              "results %s\n",
              shard_query_p50_s4 * 1e3, shard_query_p99_s4 * 1e3,
              shard_query_gap,
              shard_query_identical ? "identical" : "DIVERGED");
  std::printf("%-34s %12.2fx (work cut: each arrival scans only its own "
              "shard's learning orders)\n",
              "ingest throughput S=4 vs S=1", shard_scaling);
  std::printf("%-34s %12.2fx (admission bound already makes per-arrival "
              "maintenance sublinear)\n",
              "  same, admission bound on", shard_scaling_pruned);
  std::printf("SHAPE CHECK: background rebuild shrinks the worst ingest "
              "critical section ... %s\n",
              !tail_check_applies ? "N/A (no in-lock rebuild at this n)"
              : tail_improved     ? "OK"
                                  : "DEVIATES");
  std::printf("SHAPE CHECK: sharded ingest scales (S=4 >= 1.3x S=1, "
              "full-scan regime) with query results unchanged ... %s\n",
              shard_scaling_ok ? "OK" : "DEVIATES");
  std::printf("SHAPE CHECK: sharded steady-state query p50 at S=4 within "
              "3x of the single engine (or under %.2f ms absolute), "
              "results identical ... %s\n",
              kQueryGapFloorSeconds * 1e3,
              shard_query_ok ? "OK" : "DEVIATES");
  std::printf("\ncheckpointing (WAL every arrival, snapshot every %zu ops):\n",
              snap_every);
  PrintLatency("  ingest, persistence off", built.seconds);
  PrintLatency("  ingest, persistence on", persisted.seconds);
  std::printf("%-34s %zu written, %zu failed; worst serialize pause "
              "%.4f ms\n",
              "snapshots", persist_stats.snapshots_written,
              persist_stats.snapshot_write_failures,
              persist_stats.max_snapshot_serialize_seconds * 1e3);
  std::printf("recovery wall-clock vs log-tail length:\n");
  for (const RecoveryCell& cell : recovery_cells) {
    std::printf("  snapshot_every=%-6zu tail %6llu records, %zu snapshot "
                "loaded -> recovery %8.3f ms\n",
                cell.snapshot_every,
                static_cast<unsigned long long>(cell.log_tail_ops),
                cell.snapshots_loaded, cell.recovery_seconds * 1e3);
  }
  std::printf("SHAPE CHECK: ingest p99 with checkpointing within 2x of "
              "persistence-off ... %s\n",
              checkpoint_ok ? "OK" : "DEVIATES");
  std::printf("\nfail points (compiled in; wal.append/wal.fsync armed at "
              "p=0 — evaluated every arrival, never firing):\n");
  std::printf("%-34s %12.2f ns/call\n", "disarmed Inject",
              failpoint_disarmed_ns);
  PrintLatency("  durable ingest, points disarmed", persisted.seconds);
  PrintLatency("  durable ingest, points armed", armed.seconds);
  std::printf("%-34s %12.2fx over %llu evaluations (%llu fires)\n",
              "inactive fail-point p50 tax", failpoint_overhead_p50,
              static_cast<unsigned long long>(append_point.hits),
              static_cast<unsigned long long>(append_point.fires));
  std::printf("SHAPE CHECK: inactive fail points are free (disarmed Inject "
              "<= 100 ns, armed-never-firing ingest p50 within 1.5x of "
              "disarmed, hot path covered) ... %s\n",
              failpoint_ok ? "OK" : "DEVIATES");
  std::printf("\nmasking-one-out quality monitoring (moo_sample_rate = "
              "0.01):\n");
  PrintLatency("  ingest, monitoring off", moo_off.seconds);
  PrintLatency("  ingest, 1% holdout trickle", moo_on.seconds);
  std::printf("%-34s %12.3fx over %llu probes (%llu skipped)\n",
              "moo ingest p50 tax", moo_overhead_p50,
              static_cast<unsigned long long>(moo_stats.moo_probes),
              static_cast<unsigned long long>(moo_stats.moo_skipped));
  std::printf("SHAPE CHECK: 1%% masking-one-out trickle keeps ingest p50 "
              "within 1.05x of monitoring off (or %.0f us absolute), "
              "probes ran ... %s\n",
              kMooFloorSeconds * 1e6, moo_ok ? "OK" : "DEVIATES");
  std::printf("SHAPE CHECK: mean affected orders per arrival within 5%% of "
              "the live count ... %s\n",
              affected_ok ? "OK" : "DEVIATES");
  std::printf("SHAPE CHECK: worst Compact writer-lock hold within the "
              "Append hold gate (or %.2f ms absolute) ... %s\n",
              kCompactHoldFloorSeconds * 1e3,
              compact_hold_ok ? "OK" : "DEVIATES");
  std::printf("SHAPE CHECK: every tail percentile rests on >= %zu samples "
              "... %s\n",
              kMinTailSamples, samples_ok ? "OK" : "DEVIATES");

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"bench_streaming\",\n"
               "  \"n\": %zu,\n"
               "  \"arrivals\": %zu,\n"
               "  \"initial_build_seconds\": %.6f,\n"
               "  \"initial_build_seconds_inlock\": %.6f,\n"
               "  \"ingest_p50_seconds_inlock\": %.9f,\n"
               "  \"ingest_p99_seconds_inlock\": %.9f,\n"
               "  \"ingest_p999_seconds_inlock\": %.9f,\n"
               "  \"ingest_max_seconds_inlock\": %.9f,\n"
               "  \"ingest_p50_seconds\": %.9f,\n"
               "  \"ingest_p99_seconds\": %.9f,\n"
               "  \"ingest_p999_seconds\": %.9f,\n"
               "  \"ingest_max_seconds\": %.9f,\n"
               "  \"append_hold_max_seconds_inlock\": %.9f,\n"
               "  \"append_hold_max_seconds\": %.9f,\n"
               "  \"append_hold_improvement\": %.1f,\n"
               "  \"kdtree_rebuilds_inlock\": %zu,\n"
               "  \"kdtree_rebuilds\": %zu,\n"
               "  \"kdtree_launches\": %zu,\n"
               "  \"kdtree_swaps\": %zu,\n"
               "  \"kdtree_discarded\": %zu,\n"
               "  \"online_per_arrival_seconds\": %.9f,\n"
               "  \"online_p50_seconds\": %.9f,\n"
               "  \"online_p99_seconds\": %.9f,\n"
               "  \"online_max_seconds\": %.9f,\n"
               "  \"full_relearn_seconds\": %.9f,\n"
               "  \"speedup\": %.1f,\n"
               "  \"bit_identical_to_batch\": %s,\n"
               "  \"fast_path_appends\": %zu,\n"
               "  \"models_invalidated\": %zu,\n"
               "  \"models_solved\": %zu,\n"
               "  \"windowed_per_arrival_seconds\": %.9f,\n"
               "  \"windowed_p50_seconds\": %.9f,\n"
               "  \"windowed_p99_seconds\": %.9f,\n"
               "  \"windowed_max_seconds\": %.9f,\n"
               "  \"eviction_seconds\": %.9f,\n"
               "  \"eviction_p50_seconds\": %.9f,\n"
               "  \"eviction_p99_seconds\": %.9f,\n"
               "  \"eviction_max_seconds\": %.9f,\n"
               "  \"window_half\": %zu,\n"
               "  \"eviction_seconds_window_half\": %.9f,\n"
               "  \"eviction_cost_ratio_full_vs_half\": %.2f,\n"
               "  \"window_relearn_seconds\": %.9f,\n"
               "  \"eviction_speedup\": %.1f,\n"
               "  \"windowed_matches_batch_refit\": %s,\n"
               "  \"evictions\": %zu,\n"
               "  \"downdates\": %zu,\n"
               "  \"downdate_fallbacks\": %zu,\n"
               "  \"backfills\": %zu,\n"
               "  \"compactions\": %zu,\n"
               "  \"postings_edges\": %zu,\n"
               "  \"windowed_kdtree_swaps\": %zu,\n"
               "  \"windowed_tail_size\": %zu,\n"
               "  \"windowed_half_tail_size\": %zu,\n"
               "  \"windowed_half_evictions\": %zu,\n",
               n, online_reps, built.total_seconds, inlock.total_seconds,
               ingest_inlock.p50, ingest_inlock.p99, ingest_inlock_p999,
               ingest_inlock.max, ingest_bg.p50, ingest_bg.p99,
               ingest_bg_p999, ingest_bg.max,
               inlock_istats.max_append_hold_seconds,
               istats.max_append_hold_seconds,
               istats.max_append_hold_seconds > 0.0
                   ? inlock_istats.max_append_hold_seconds /
                         istats.max_append_hold_seconds
                   : 0.0,
               inlock_istats.rebuilds, istats.rebuilds, istats.launches,
               istats.swaps, istats.discarded, online_mean, online_lat.p50,
               online_lat.p99, online_lat.max, relearn_mean, speedup,
               identical ? "true" : "false", stats.fast_path_appends,
               stats.models_invalidated, stats.models_solved, windowed_mean,
               windowed_lat.p50, windowed_lat.p99, windowed_lat.max,
               evict_mean, evict_lat.p50, evict_lat.p99, evict_lat.max,
               n_half, half_evict_mean, evict_window_ratio,
               window_relearn_mean, evict_speedup,
               windowed_matches ? "true" : "false", wstats.evicted,
               wstats.downdates, wstats.downdate_fallbacks, wstats.backfills,
               wstats.compactions, wstats.postings_edges, wistats.swaps,
               wistats.tail_size, histats.tail_size, hstats.evicted);
  std::fprintf(out,
               "  \"online_samples\": %zu,\n"
               "  \"eviction_samples\": %zu,\n"
               "  \"online_p999_seconds\": %.9f,\n"
               "  \"eviction_p999_seconds\": %.9f,\n"
               "  \"tail_samples_min\": %zu,\n"
               "  \"tail_samples_ok\": %s,\n"
               "  \"ingest_p50_seconds_fullscan\": %.9f,\n"
               "  \"ingest_p99_seconds_fullscan\": %.9f,\n"
               "  \"admission_speedup_p50\": %.2f,\n"
               "  \"orders_scanned\": %zu,\n"
               "  \"orders_admitted\": %zu,\n"
               "  \"admission_skips\": %zu,\n"
               "  \"mean_orders_scanned_per_arrival\": %.2f,\n"
               "  \"mean_orders_admitted_per_arrival\": %.2f,\n"
               "  \"affected_fraction_of_live\": %.6f,\n"
               "  \"affected_within_5pct\": %s,\n"
               "  \"compact_hold_max_seconds\": %.9f,\n"
               "  \"compact_survivors\": %zu,\n"
               "  \"compact_hold_within_append_gate\": %s,\n",
               online_seconds.size(), evict_seconds.size(),
               iim::Percentile(online_seconds, 99.9),
               iim::Percentile(evict_seconds, 99.9), kMinTailSamples,
               samples_ok ? "true" : "false", ingest_fullscan.p50,
               ingest_fullscan.p99, admission_speedup_p50,
               stats.orders_scanned, stats.orders_admitted,
               stats.admission_skips, mean_orders_scanned,
               mean_orders_admitted, affected_fraction,
               affected_ok ? "true" : "false", compact_hold_seconds,
               compact_survivors, compact_hold_ok ? "true" : "false");
  std::fprintf(out,
               "  \"checkpoint_snapshot_every\": %zu,\n"
               "  \"ingest_p50_seconds_persist\": %.9f,\n"
               "  \"ingest_p99_seconds_persist\": %.9f,\n"
               "  \"ingest_p999_seconds_persist\": %.9f,\n"
               "  \"ingest_max_seconds_persist\": %.9f,\n"
               "  \"snapshots_written\": %zu,\n"
               "  \"snapshot_write_failures\": %zu,\n"
               "  \"snapshot_serialize_max_seconds\": %.9f,\n"
               "  \"checkpoint_p99_within_2x\": %s,\n",
               snap_every, ingest_persist.p50, ingest_persist.p99,
               ingest_persist_p999, ingest_persist.max,
               persist_stats.snapshots_written,
               persist_stats.snapshot_write_failures,
               persist_stats.max_snapshot_serialize_seconds,
               checkpoint_ok ? "true" : "false");
  std::fprintf(out,
               "  \"failpoint_disarmed_ns_per_call\": %.2f,\n"
               "  \"ingest_p50_seconds_failpoints_armed\": %.9f,\n"
               "  \"ingest_p99_seconds_failpoints_armed\": %.9f,\n"
               "  \"failpoint_armed_evaluations\": %llu,\n"
               "  \"failpoint_armed_fires\": %llu,\n"
               "  \"failpoint_overhead_ratio_p50\": %.3f,\n"
               "  \"failpoint_inactive_ok\": %s,\n",
               failpoint_disarmed_ns, ingest_armed.p50, ingest_armed.p99,
               static_cast<unsigned long long>(append_point.hits),
               static_cast<unsigned long long>(append_point.fires),
               failpoint_overhead_p50, failpoint_ok ? "true" : "false");
  std::fprintf(out, "  \"recovery\": [\n");
  for (size_t c = 0; c < recovery_cells.size(); ++c) {
    const RecoveryCell& cell = recovery_cells[c];
    std::fprintf(out,
                 "    {\"snapshot_every\": %zu, \"log_tail_ops\": %llu, "
                 "\"snapshots_loaded\": %zu, "
                 "\"recovery_seconds\": %.6f}%s\n",
                 cell.snapshot_every,
                 static_cast<unsigned long long>(cell.log_tail_ops),
                 cell.snapshots_loaded, cell.recovery_seconds,
                 c + 1 < recovery_cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"sharding\": [\n");
  for (size_t c = 0; c < shard_cells.size(); ++c) {
    const ShardCell& cell = shard_cells[c];
    std::fprintf(out,
                 "    {\"shards\": %zu, \"ingest_seconds\": %.6f, "
                 "\"ingest_rows_per_sec\": %.1f, "
                 "\"impute_p50_seconds\": %.9f, "
                 "\"impute_p99_seconds\": %.9f, "
                 "\"results_identical_to_single\": %s}%s\n",
                 cell.shards, cell.ingest_seconds, cell.rows_per_sec,
                 cell.impute_p50, cell.impute_p99,
                 cell.identical ? "true" : "false",
                 c + 1 < shard_cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"sharding_fullscan\": [\n");
  for (size_t c = 0; c < fullscan_cells.size(); ++c) {
    const ShardCell& cell = fullscan_cells[c];
    std::fprintf(out,
                 "    {\"shards\": %zu, \"ingest_seconds\": %.6f, "
                 "\"ingest_rows_per_sec\": %.1f, "
                 "\"results_identical_to_single\": %s}%s\n",
                 cell.shards, cell.ingest_seconds, cell.rows_per_sec,
                 cell.identical ? "true" : "false",
                 c + 1 < fullscan_cells.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"sharding_ingest_scaling_s4_vs_s1\": %.2f,\n"
               "  \"sharding_ingest_scaling_s4_vs_s1_pruned\": %.2f,\n"
               "  \"sharding_results_identical\": %s,\n"
               "  \"query_gap_kdtree_threshold\": %zu,\n"
               "  \"single_query_p50_seconds\": %.9f,\n"
               "  \"single_query_p99_seconds\": %.9f,\n"
               "  \"sharded_query_p50_seconds_s4\": %.9f,\n"
               "  \"sharded_query_p99_seconds_s4\": %.9f,\n"
               "  \"sharding_query_gap_s4_vs_single\": %.2f,\n"
               "  \"sharding_query_gap_within_3x\": %s,\n",
               shard_scaling, shard_scaling_pruned,
               shard_identical ? "true" : "false",
               qopt.index_kdtree_threshold, single_query.p50,
               single_query.p99, shard_query_p50_s4, shard_query_p99_s4,
               shard_query_gap, shard_query_ok ? "true" : "false");
  std::fprintf(out,
               "  \"moo_sample_rate\": 0.01,\n"
               "  \"ingest_p50_seconds_moo_off\": %.9f,\n"
               "  \"ingest_p99_seconds_moo_off\": %.9f,\n"
               "  \"ingest_p50_seconds_moo\": %.9f,\n"
               "  \"ingest_p99_seconds_moo\": %.9f,\n"
               "  \"moo_probes\": %llu,\n"
               "  \"moo_skipped\": %llu,\n"
               "  \"moo_overhead_ratio_p50\": %.3f,\n"
               "  \"moo_overhead_within_gate\": %s\n"
               "}\n",
               ingest_moo_off.p50, ingest_moo_off.p99, ingest_moo_on.p50,
               ingest_moo_on.p99,
               static_cast<unsigned long long>(moo_stats.moo_probes),
               static_cast<unsigned long long>(moo_stats.moo_skipped),
               moo_overhead_p50, moo_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return fast_enough && identical && evict_fast_enough && windowed_matches &&
                 tail_improved && shard_scaling_ok && shard_query_ok &&
                 checkpoint_ok && affected_ok && compact_hold_ok &&
                 samples_ok && failpoint_ok && moo_ok
             ? 0
             : 1;
}
