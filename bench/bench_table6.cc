// Table VI: imputation RMS per incomplete attribute Ax over ASF with 100
// incomplete tuples — methods behave differently depending on the
// attribute's sparsity/heterogeneity profile.

#include <cmath>
#include <cstdio>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "eval/report.h"

int main() {
  iim::bench::PrintHeader(
      "Table VI: RMS per incomplete attribute (ASF, 100 tuples)",
      "Zhang et al., ICDE 2019, Table VI");

  iim::data::Table dataset = iim::bench::LoadDataset("ASF");
  std::vector<std::string> baseline_names =
      iim::baselines::AllBaselineNames();

  std::vector<std::string> headers = {"Ax", "R2_S", "R2_H", "IIM"};
  for (const auto& n : baseline_names) headers.push_back(n);
  iim::eval::TablePrinter table(headers);

  size_t iim_wins = 0, attrs = dataset.NumCols();
  for (size_t attr = 0; attr < attrs; ++attr) {
    iim::eval::ExperimentConfig config;
    config.inject.tuple_count = 100;
    config.inject.fixed_attr = static_cast<int>(attr);
    config.seed = 201 + attr;

    auto res = iim::eval::RunComparison(
        dataset, config,
        iim::bench::MethodSuite(baseline_names,
                                iim::bench::DefaultIimOptions()));
    if (!res.ok()) {
      std::fprintf(stderr, "A%zu: %s\n", attr + 1,
                   res.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row = {
        "A" + std::to_string(attr + 1),
        iim::eval::FormatMetric(res.value().r2_sparsity, 2),
        iim::eval::FormatMetric(res.value().r2_heterogeneity, 2)};
    double iim = iim::bench::RmsOf(res.value(), "IIM");
    row.push_back(iim::eval::FormatMetric(iim, 3));
    double best_other = 1e300;
    for (const auto& name : baseline_names) {
      double rms = iim::bench::RmsOf(res.value(), name);
      row.push_back(iim::eval::FormatMetric(rms, 3));
      if (std::isfinite(rms)) best_other = std::min(best_other, rms);
    }
    if (iim <= best_other * 1.15 + 1e-12) ++iim_wins;
    table.AddRow(row);
  }

  std::printf("%s", table.ToString().c_str());
  iim::bench::ShapeCheck(
      "IIM best (or within 15%) on most attributes despite their different "
      "sparsity/heterogeneity profiles",
      iim_wins >= attrs - 1);
  return 0;
}
