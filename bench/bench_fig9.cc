// Figure 9: RMS error and imputation time vs. the number of imputation
// neighbors k (kNN, IIM, kNNE) over ASF with 100 incomplete tuples.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  iim::bench::PrintHeader(
      "Figure 9: varying #imputation neighbors k (ASF, 100 tuples)",
      "Zhang et al., ICDE 2019, Figure 9");

  const std::vector<std::string> figure_methods = {"kNN", "IIM", "kNNE"};
  iim::data::Table dataset = iim::bench::LoadDataset("ASF");
  const std::vector<size_t> ks = {1, 2, 3, 5, 10, 20, 50, 100};

  std::vector<iim::bench::SweepPoint> points;
  for (size_t k : ks) {
    iim::eval::ExperimentConfig config;
    config.inject.tuple_count = 100;
    config.seed = 801;
    auto res = iim::eval::RunComparison(
        dataset, config,
        iim::bench::MethodSuite({"kNN", "kNNE"},
                                iim::bench::DefaultIimOptions(k)));
    if (!res.ok()) {
      std::fprintf(stderr, "k=%zu: %s\n", k,
                   res.status().ToString().c_str());
      return 1;
    }
    points.push_back({std::to_string(k), std::move(res).value()});
  }

  iim::bench::PrintSweep("k", figure_methods, points);

  // U-shape in k for the tuple-model methods: the best k is interior, and
  // k = 100 is worse than the best (irrelevant tuples distract).
  auto series = [&](const std::string& name) {
    std::vector<double> out;
    for (const auto& p : points) {
      out.push_back(iim::bench::RmsOf(p.result, name));
    }
    return out;
  };
  std::vector<double> knn = series("kNN");
  double knn_best = *std::min_element(knn.begin(), knn.end());
  iim::bench::ShapeCheck(
      "moderate k preferred: kNN at k=100 worse than its best k",
      knn.back() > knn_best * 1.05);
  std::vector<double> iim_series = series("IIM");
  bool iim_dominates = true;
  for (size_t i = 0; i < points.size(); ++i) {
    if (iim_series[i] > knn[i] + 1e-12) iim_dominates = false;
  }
  iim::bench::ShapeCheck("IIM at or below kNN for every k", iim_dominates);
  return 0;
}
