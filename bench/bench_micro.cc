// Microbenchmarks (google-benchmark) for the kernels behind Table III and
// the imputation fast paths:
//   - from-scratch ridge fit over l rows vs incremental update + solve
//     (the Proposition 3 claim: constant vs linear in l);
//   - kd-tree vs brute-force neighbor queries;
//   - candidate combination (Formulas 10-12);
//   - one full IIM ImputeOne call.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/iim_imputer.h"
#include "datasets/generator.h"
#include "neighbors/kdtree.h"
#include "regress/incremental_ridge.h"
#include "regress/ridge.h"

namespace {

constexpr size_t kFeatures = 8;

iim::linalg::Matrix RandomDesign(size_t rows, iim::Rng* rng) {
  iim::linalg::Matrix x(rows, kFeatures);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < kFeatures; ++j) x(i, j) = rng->Uniform(-3, 3);
  }
  return x;
}

// Table III, "from scratch": building U, V costs m^2 * l.
void BM_RidgeFromScratch(benchmark::State& state) {
  size_t ell = static_cast<size_t>(state.range(0));
  iim::Rng rng(1);
  iim::linalg::Matrix x = RandomDesign(ell, &rng);
  iim::linalg::Vector y(ell);
  for (double& v : y) v = rng.Uniform(-5, 5);
  for (auto _ : state) {
    auto fit = iim::regress::FitRidge(x, y);
    benchmark::DoNotOptimize(fit);
  }
  state.SetComplexityN(static_cast<int64_t>(ell));
}
BENCHMARK(BM_RidgeFromScratch)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity(benchmark::oN);

// Table III, "incremental": folding in h = 16 new rows + solve is O(m^2 h
// + m^3), independent of the l rows already absorbed.
void BM_RidgeIncrementalStep(benchmark::State& state) {
  size_t ell = static_cast<size_t>(state.range(0));
  const size_t h = 16;
  iim::Rng rng(2);
  iim::linalg::Matrix base = RandomDesign(ell, &rng);
  iim::linalg::Matrix extra = RandomDesign(h, &rng);
  iim::linalg::Vector y_base(ell), y_extra(h);
  for (double& v : y_base) v = rng.Uniform(-5, 5);
  for (double& v : y_extra) v = rng.Uniform(-5, 5);

  iim::regress::IncrementalRidge warm(kFeatures);
  warm.AddRows(base, y_base);
  for (auto _ : state) {
    iim::regress::IncrementalRidge step = warm;  // U, V snapshot
    step.AddRows(extra, y_extra);
    auto fit = step.Solve();
    benchmark::DoNotOptimize(fit);
  }
  state.SetComplexityN(static_cast<int64_t>(ell));
}
BENCHMARK(BM_RidgeIncrementalStep)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity(benchmark::o1);

void BM_NeighborQuery(benchmark::State& state, bool use_kdtree) {
  size_t n = static_cast<size_t>(state.range(0));
  iim::datasets::DatasetSpec spec;
  spec.name = "bench";
  spec.n = n;
  spec.m = 4;
  spec.regimes = 3;
  spec.exogenous = 2;
  auto gen = iim::datasets::Generate(spec, 3);
  if (!gen.ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  const iim::data::Table& t = gen.value().table;
  std::vector<int> cols = {0, 1, 2};
  std::unique_ptr<iim::neighbors::NeighborIndex> index;
  if (use_kdtree) {
    index = std::make_unique<iim::neighbors::KdTreeIndex>(&t, cols);
  } else {
    index = std::make_unique<iim::neighbors::BruteForceIndex>(&t, cols);
  }
  iim::neighbors::QueryOptions qopt;
  qopt.k = 10;
  size_t probe = 0;
  for (auto _ : state) {
    auto result = index->Query(t.Row(probe % n), qopt);
    benchmark::DoNotOptimize(result);
    ++probe;
  }
}
void BM_BruteForceQuery(benchmark::State& state) {
  BM_NeighborQuery(state, false);
}
void BM_KdTreeQuery(benchmark::State& state) {
  BM_NeighborQuery(state, true);
}
BENCHMARK(BM_BruteForceQuery)->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK(BM_KdTreeQuery)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_CombineCandidates(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  iim::Rng rng(4);
  std::vector<double> candidates(k);
  for (double& c : candidates) c = rng.Uniform(0, 10);
  for (auto _ : state) {
    auto v = iim::core::CombineCandidates(candidates);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_CombineCandidates)->Arg(5)->Arg(20)->Arg(100);

// Learning phase (Algorithm 3, adaptive) across thread counts: Arg0 = n,
// Arg1 = threads. This is the headline number of BENCH_learning.json; the
// models are bit-identical for every thread count, so the runs only differ
// in wall-clock.
void BM_IimLearnAdaptive(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t threads = static_cast<size_t>(state.range(1));
  iim::datasets::DatasetSpec spec;
  spec.name = "bench";
  spec.n = n;
  spec.m = 5;
  spec.regimes = 3;
  spec.exogenous = 2;
  auto gen = iim::datasets::Generate(spec, 5);
  if (!gen.ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  const iim::data::Table& t = gen.value().table;

  iim::core::IimOptions opt;
  opt.k = 5;
  opt.adaptive = true;
  opt.step_h = 2;
  opt.max_ell = 50;
  opt.threads = threads;
  for (auto _ : state) {
    iim::core::IimImputer iim(opt);
    if (!iim.Fit(t, 4, {0, 1, 2, 3}).ok()) {
      state.SkipWithError("fit failed");
      return;
    }
    benchmark::DoNotOptimize(iim.learning_seconds());
  }
}
BENCHMARK(BM_IimLearnAdaptive)
    ->Args({5000, 1})
    ->Args({5000, 2})
    ->Args({5000, 4})
    ->Args({5000, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

// Batched imputation phase across thread counts: Arg0 = n, Arg1 = threads.
void BM_IimImputeBatch(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t threads = static_cast<size_t>(state.range(1));
  iim::datasets::DatasetSpec spec;
  spec.name = "bench";
  spec.n = n;
  spec.m = 5;
  spec.regimes = 3;
  spec.exogenous = 2;
  auto gen = iim::datasets::Generate(spec, 5);
  if (!gen.ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  const iim::data::Table& t = gen.value().table;

  iim::core::IimOptions opt;
  opt.k = 5;
  opt.ell = 20;
  opt.threads = threads;
  iim::core::IimImputer iim(opt);
  if (!iim.Fit(t, 4, {0, 1, 2, 3}).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  std::vector<iim::data::RowView> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) rows.push_back(t.Row(i));
  for (auto _ : state) {
    auto values = iim.ImputeBatch(rows);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_IimImputeBatch)
    ->Args({5000, 1})
    ->Args({5000, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_IimImputeOne(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  iim::datasets::DatasetSpec spec;
  spec.name = "bench";
  spec.n = n;
  spec.m = 5;
  spec.regimes = 3;
  spec.exogenous = 2;
  auto gen = iim::datasets::Generate(spec, 5);
  if (!gen.ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  const iim::data::Table& t = gen.value().table;

  iim::core::IimOptions opt;
  opt.k = 5;
  opt.ell = 20;
  iim::core::IimImputer iim(opt);
  if (!iim.Fit(t, 4, {0, 1, 2, 3}).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  size_t probe = 0;
  for (auto _ : state) {
    auto v = iim.ImputeOne(t.Row(probe % n));
    benchmark::DoNotOptimize(v);
    ++probe;
  }
}
BENCHMARK(BM_IimImputeOne)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
