// Ablation bench (DESIGN.md section 7): isolates IIM's two design choices
// on three datasets with different sparsity/heterogeneity profiles:
//   (1) candidate aggregation — mutual-vote weights (Formula 12) vs
//       uniform weights (the Proposition 1 degenerate form);
//   (2) learning-neighbor selection — adaptive per-tuple l (Algorithm 3)
//       vs a fixed l, vs the extreme l = 1 (kNN) and l = n (GLR).

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/report.h"

namespace {

double RunVariant(const iim::data::Table& dataset,
                  const iim::core::IimOptions& options, uint64_t seed) {
  iim::eval::ExperimentConfig config;
  config.inject.tuple_fraction = 0.05;
  config.seed = seed;
  auto res = iim::eval::RunComparison(dataset, config,
                                      {iim::bench::IimMethod(options)});
  if (!res.ok()) std::exit(1);
  return iim::bench::RmsOf(res.value(), "IIM");
}

}  // namespace

int main() {
  iim::bench::PrintHeader(
      "Ablation: vote weighting and adaptive l, across data profiles",
      "design-choice ablations for DESIGN.md section 7");

  const std::vector<std::pair<std::string, size_t>> datasets = {
      {"ASF", 0},      // heterogeneous
      {"CCPP", 5000},  // near-global regression
      {"CA", 5000}};   // sparse, homogeneous

  iim::eval::TablePrinter table({"Dataset", "Adaptive+vote",
                                 "Adaptive+uniform", "Fixed l=20",
                                 "l=1 (kNN-like)", "l=n (GLR-like)"});
  bool vote_helps_somewhere = false;
  bool adaptive_beats_extremes = true;

  for (const auto& [name, n_override] : datasets) {
    iim::data::Table dataset = iim::bench::LoadDataset(name, n_override);
    uint64_t seed = 3001;

    iim::core::IimOptions adaptive = iim::bench::DefaultIimOptions();
    double rms_adaptive = RunVariant(dataset, adaptive, seed);

    iim::core::IimOptions uniform = adaptive;
    uniform.uniform_weights = true;
    double rms_uniform = RunVariant(dataset, uniform, seed);

    iim::core::IimOptions fixed;
    fixed.k = 5;
    fixed.ell = 20;
    double rms_fixed = RunVariant(dataset, fixed, seed);

    iim::core::IimOptions knn_like;
    knn_like.k = 5;
    knn_like.ell = 1;
    knn_like.uniform_weights = true;
    double rms_knn = RunVariant(dataset, knn_like, seed);

    iim::core::IimOptions glr_like;
    glr_like.k = 5;
    glr_like.ell = dataset.NumRows();  // clamped to n after injection
    double rms_glr = RunVariant(dataset, glr_like, seed);

    table.AddRow({name, iim::eval::FormatMetric(rms_adaptive, 3),
                  iim::eval::FormatMetric(rms_uniform, 3),
                  iim::eval::FormatMetric(rms_fixed, 3),
                  iim::eval::FormatMetric(rms_knn, 3),
                  iim::eval::FormatMetric(rms_glr, 3)});

    if (rms_adaptive < rms_uniform - 1e-9) vote_helps_somewhere = true;
    if (rms_adaptive > std::min(rms_knn, rms_glr) * 1.10 + 1e-12) {
      adaptive_beats_extremes = false;
    }
  }

  std::printf("%s", table.ToString().c_str());
  iim::bench::ShapeCheck(
      "vote weighting helps on at least one profile (vs uniform)",
      vote_helps_somewhere);
  iim::bench::ShapeCheck(
      "adaptive l at least matches the better extreme (l=1 / l=n) "
      "on every profile",
      adaptive_beats_extremes);
  return 0;
}
