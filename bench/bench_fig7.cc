// Figure 7: RMS error and imputation time vs. the number of complete
// tuples n = |r|, over CA with 1k incomplete tuples.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  iim::bench::PrintHeader(
      "Figure 7: varying #complete tuples n (CA, 1k tuples)",
      "Zhang et al., ICDE 2019, Figure 7");

  const std::vector<std::string> figure_methods = {
      "kNN", "IIM", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"};
  const std::vector<std::string> baselines = {
      "kNN", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"};

  iim::data::Table dataset = iim::bench::LoadDataset("CA");
  const std::vector<size_t> sizes = {2000, 6000, 10000, 14000, 19000};
  std::vector<iim::bench::SweepPoint> points;
  for (size_t n : sizes) {
    iim::eval::ExperimentConfig config;
    config.inject.tuple_count = 1000;
    config.complete_tuples = n;
    config.seed = 601;
    auto res = iim::eval::RunComparison(
        dataset, config,
        iim::bench::MethodSuite(baselines, iim::bench::DefaultIimOptions()));
    if (!res.ok()) {
      std::fprintf(stderr, "n=%zu: %s\n", n,
                   res.status().ToString().c_str());
      return 1;
    }
    points.push_back({std::to_string(n), std::move(res).value()});
  }

  iim::bench::PrintSweep("n", figure_methods, points);
  double iim_first = iim::bench::RmsOf(points.front().result, "IIM");
  double iim_last = iim::bench::RmsOf(points.back().result, "IIM");
  iim::bench::ShapeCheck("IIM does not degrade with more complete tuples",
                         iim_last <= iim_first * 1.05 + 1e-12);
  bool iim_leads = true;
  for (const auto& p : points) {
    if (iim::bench::RmsOf(p.result, "IIM") >
        iim::bench::RmsOf(p.result, "kNN")) {
      iim_leads = false;
    }
  }
  iim::bench::ShapeCheck("IIM below kNN at every n (CA)", iim_leads);
  return 0;
}
