// Table VII: applications with imputation.
//   (1) Clustering purity on ASF and CA: k-means clusters on the imputed
//       data are compared against clusters computed on the original
//       complete data; "Missing" = discard incomplete tuples.
//   (2) Classification F1 on MAM and HEP (embedded real missing values,
//       no ground truth): 5-fold CV kNN classifier with and without
//       imputation.

#include <cmath>
#include <cstdio>

#include "apps/cross_validation.h"
#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "cluster/kmeans.h"
#include "core/iim_imputer.h"
#include "datasets/specs.h"
#include "eval/report.h"

namespace {

using iim::bench::LoadDataset;

std::vector<iim::eval::Method> AllMethods() {
  std::vector<iim::eval::Method> methods;
  methods.push_back(iim::bench::IimMethod(iim::bench::DefaultIimOptions()));
  for (auto& m :
       iim::bench::BaselineMethods(iim::baselines::AllBaselineNames())) {
    methods.push_back(std::move(m));
  }
  return methods;
}

// --- Clustering side -----------------------------------------------------

struct ClusteringRow {
  std::string dataset;
  double missing = 0.0;                 // purity after discarding
  std::vector<double> purity_by_method; // aligned with AllMethods()
};

ClusteringRow RunClustering(const std::string& name, size_t n_override,
                            size_t clusters, uint64_t seed) {
  ClusteringRow row;
  row.dataset = name;
  iim::data::Table original = LoadDataset(name, n_override, seed);

  // Ground-truth clusters from the original complete data.
  iim::cluster::KMeansOptions kopt;
  kopt.k = clusters;
  iim::Rng truth_rng(seed + 1);
  auto truth = iim::cluster::KMeans(original.ToMatrix(), kopt, &truth_rng);
  if (!truth.ok()) std::exit(1);

  // Inject 10% incomplete tuples.
  iim::data::Table working = original;
  iim::data::MissingMask mask(working.NumRows(), working.NumCols());
  iim::eval::InjectOptions iopt;
  iopt.tuple_fraction = 0.10;
  iim::Rng inject_rng(seed + 2);
  if (!iim::eval::InjectMissing(&working, &mask, iopt, &inject_rng).ok()) {
    std::exit(1);
  }
  iim::data::Table r = working.TakeRows(mask.CompleteRows());

  // "Missing": cluster only the remaining complete tuples.
  {
    std::vector<int> truth_subset;
    for (size_t rowi : mask.CompleteRows()) {
      truth_subset.push_back(truth.value().assignments[rowi]);
    }
    iim::Rng rng(seed + 3);
    auto clusters_discard = iim::cluster::KMeans(r.ToMatrix(), kopt, &rng);
    if (!clusters_discard.ok()) std::exit(1);
    row.missing = iim::eval::Purity(clusters_discard.value().assignments,
                                    truth_subset)
                      .value_or(0.0);
  }

  for (const auto& method : AllMethods()) {
    std::unique_ptr<iim::baselines::Imputer> imputer = method.make();
    iim::data::Table imputed = working;
    auto imp = iim::eval::ImputeAll(r, working, mask, imputer.get(), 0,
                                    &imputed);
    if (!imp.ok() || !imputed.IsComplete()) {
      row.purity_by_method.push_back(std::nan(""));
      continue;
    }
    iim::Rng rng(seed + 4);
    auto clusters_imputed =
        iim::cluster::KMeans(imputed.ToMatrix(), kopt, &rng);
    if (!clusters_imputed.ok()) {
      row.purity_by_method.push_back(std::nan(""));
      continue;
    }
    row.purity_by_method.push_back(
        iim::eval::Purity(clusters_imputed.value().assignments,
                          truth.value().assignments)
            .value_or(0.0));
  }
  return row;
}

// --- Classification side -------------------------------------------------

struct ClassificationRow {
  std::string dataset;
  double missing = 0.0;             // F1 with missing values in place
  std::vector<double> f1_by_method;
};

ClassificationRow RunClassification(const std::string& name,
                                    uint64_t seed) {
  ClassificationRow row;
  row.dataset = name;
  auto spec = iim::datasets::SpecByName(name);
  if (!spec.has_value()) std::exit(1);
  auto gen = iim::datasets::Generate(*spec, seed);
  if (!gen.ok()) std::exit(1);
  const iim::data::Table& with_missing = gen.value().table;
  const iim::data::MissingMask& mask = gen.value().mask;

  iim::apps::CvOptions cv;
  cv.folds = 5;
  cv.seed = seed + 1;
  row.missing = iim::apps::CrossValidatedF1(with_missing, cv).value_or(0.0);

  iim::data::Table r = with_missing.TakeRows(mask.CompleteRows());
  for (const auto& method : AllMethods()) {
    std::unique_ptr<iim::baselines::Imputer> imputer = method.make();
    iim::data::Table imputed = with_missing;
    auto imp = iim::eval::ImputeAll(r, with_missing, mask, imputer.get(), 0,
                                    &imputed);
    if (!imp.ok()) {
      row.f1_by_method.push_back(std::nan(""));
      continue;
    }
    row.f1_by_method.push_back(
        iim::apps::CrossValidatedF1(imputed, cv).value_or(std::nan("")));
  }
  return row;
}

}  // namespace

int main() {
  iim::bench::PrintHeader(
      "Table VII: clustering purity (ASF, CA) and classification F1 "
      "(MAM, HEP) with imputation",
      "Zhang et al., ICDE 2019, Table VII");

  std::vector<std::string> headers = {"Dataset", "Missing", "IIM"};
  for (const auto& n : iim::baselines::AllBaselineNames()) {
    headers.push_back(n);
  }
  iim::eval::TablePrinter table(headers);

  // Clustering: CA scaled to 5k tuples to bound k-means wall-clock.
  std::vector<ClusteringRow> clustering_rows = {
      RunClustering("ASF", 0, 4, 2001), RunClustering("CA", 5000, 2, 2002)};
  bool imputation_beats_discarding = true;
  bool iim_top_tier = true;
  for (const auto& row : clustering_rows) {
    std::vector<std::string> cells = {row.dataset,
                                      iim::eval::FormatMetric(row.missing, 3)};
    double best = 0.0;
    for (double purity : row.purity_by_method) {
      cells.push_back(iim::eval::FormatMetric(purity, 3));
      if (std::isfinite(purity)) best = std::max(best, purity);
    }
    table.AddRow(cells);
    double iim = row.purity_by_method[0];
    if (iim <= row.missing) imputation_beats_discarding = false;
    if (iim < best - 0.05) iim_top_tier = false;
  }

  std::vector<ClassificationRow> classification_rows = {
      RunClassification("MAM", 2003), RunClassification("HEP", 2004)};
  bool imputation_helps_f1 = true;
  for (const auto& row : classification_rows) {
    std::vector<std::string> cells = {row.dataset,
                                      iim::eval::FormatMetric(row.missing, 3)};
    for (double f1 : row.f1_by_method) {
      cells.push_back(iim::eval::FormatMetric(f1, 3));
    }
    table.AddRow(cells);
    if (row.f1_by_method[0] < row.missing - 0.02) {
      imputation_helps_f1 = false;
    }
  }

  std::printf("%s", table.ToString().c_str());
  std::printf("(rows 1-2: clustering purity; rows 3-4: classification "
              "macro-F1; 'Missing' = no imputation)\n");
  iim::bench::ShapeCheck(
      "IIM imputation beats discarding incomplete tuples (purity)",
      imputation_beats_discarding);
  iim::bench::ShapeCheck("IIM purity within 0.05 of the best method",
                         iim_top_tier);
  iim::bench::ShapeCheck(
      "IIM imputation does not hurt classification F1 vs missing",
      imputation_helps_f1);
  return 0;
}
