// Figure 8: RMS error and imputation time vs. the cluster size of
// incomplete tuples, over ASF with 100 incomplete tuples in total.
// Clustered missing values starve tuple-model methods of close complete
// neighbors while attribute-model methods stay stable.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  iim::bench::PrintHeader(
      "Figure 8: varying incomplete-tuple cluster size (ASF, 100 tuples)",
      "Zhang et al., ICDE 2019, Figure 8");

  const std::vector<std::string> figure_methods = {
      "kNN", "IIM", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"};
  const std::vector<std::string> baselines = {
      "kNN", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"};

  iim::data::Table dataset = iim::bench::LoadDataset("ASF");
  const std::vector<size_t> cluster_sizes = {1, 2, 3, 5, 8, 10};
  std::vector<iim::bench::SweepPoint> points;
  for (size_t size : cluster_sizes) {
    iim::eval::ExperimentConfig config;
    config.inject.tuple_count = 100;
    config.inject.cluster_size = size;
    config.seed = 701;
    auto res = iim::eval::RunComparison(
        dataset, config,
        iim::bench::MethodSuite(baselines, iim::bench::DefaultIimOptions()));
    if (!res.ok()) {
      std::fprintf(stderr, "cluster=%zu: %s\n", size,
                   res.status().ToString().c_str());
      return 1;
    }
    points.push_back({std::to_string(size), std::move(res).value()});
  }

  iim::bench::PrintSweep("cluster", figure_methods, points);
  // Tuple-model methods degrade as clusters grow; GLR stays flat; IIM
  // stays best or near-best throughout (Figure 8a).
  double knn_first = iim::bench::RmsOf(points.front().result, "kNN");
  double knn_last = iim::bench::RmsOf(points.back().result, "kNN");
  iim::bench::ShapeCheck("kNN degrades as incomplete clusters grow",
                         knn_last > knn_first);
  double glr_first = iim::bench::RmsOf(points.front().result, "GLR");
  double glr_last = iim::bench::RmsOf(points.back().result, "GLR");
  iim::bench::ShapeCheck("GLR roughly stable across cluster sizes",
                         std::fabs(glr_last - glr_first) <
                             0.35 * glr_first + 1e-12);
  bool iim_leads = true;
  for (const auto& p : points) {
    if (iim::bench::RmsOf(p.result, "IIM") >
        iim::bench::RmsOf(p.result, "kNN") + 1e-12) {
      iim_leads = false;
    }
  }
  iim::bench::ShapeCheck("IIM at or below kNN at every cluster size",
                         iim_leads);
  return 0;
}
