// Shared plumbing for the experiment benches (bench_table*, bench_fig*):
// method construction, dataset generation with optional down-scaling, and
// paper-style printing.
//
// Every bench prints (1) the configuration it ran, (2) the series/rows the
// corresponding paper table or figure reports, and (3) a SHAPE CHECK line
// summarizing whether the paper's qualitative claim held on this run.

#ifndef IIM_BENCH_BENCH_COMMON_H_
#define IIM_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/iim_options.h"
#include "data/table.h"
#include "datasets/generator.h"
#include "eval/experiment.h"

namespace iim::bench {

// Default IIM configuration for the comparison benches: adaptive learning
// with bounded candidate l and sampled validation so the large relations
// (CA 20k, SN 100k) stay tractable. The caps are far above the optimal l
// observed in Figure 11 (tens), so they do not bind the accuracy.
// The thread count defaults to the IIM_BENCH_THREADS environment variable
// (1 when unset) so every bench can be widened without a rebuild.
core::IimOptions DefaultIimOptions(size_t k = 5);

// IIM_BENCH_THREADS as a size_t, or `fallback` when unset/invalid.
size_t BenchThreads(size_t fallback = 1);

// A Method entry for IIM with the given options.
eval::Method IimMethod(const core::IimOptions& options,
                       const std::string& label = "IIM");

// Method entries for the named baselines (Table II names). `threads` is
// forwarded to baselines with a parallel ImputeBatch (kNN).
std::vector<eval::Method> BaselineMethods(
    const std::vector<std::string>& names, size_t k = 5, size_t threads = 1);

// IIM + the listed baselines.
std::vector<eval::Method> MethodSuite(const std::vector<std::string>& names,
                                      const core::IimOptions& iim_options);

// Generates the named dataset (Table IV), optionally overriding n.
// Exits the process with a message on failure (benches are CLI tools).
data::Table LoadDataset(const std::string& name, size_t n_override = 0,
                        uint64_t seed = 7);

// The RMS of `name` in `result` (NaN if absent/failed).
double RmsOf(const eval::ExperimentResult& result, const std::string& name);

// One x-axis point of a figure sweep.
struct SweepPoint {
  std::string label;  // x value as printed on the figure axis
  eval::ExperimentResult result;
};

// Prints the two panels of the paper's figures: RMS error and imputation
// time cost (both per method, one row per x value).
void PrintSweep(const std::string& x_name,
                const std::vector<std::string>& method_names,
                const std::vector<SweepPoint>& points);

// Prints "SHAPE CHECK: <claim> ... OK|DEVIATES".
void ShapeCheck(const std::string& claim, bool held);

// Prints the standard bench header.
void PrintHeader(const std::string& title, const std::string& paper_ref);

}  // namespace iim::bench

#endif  // IIM_BENCH_BENCH_COMMON_H_
