// Figure 10: RMS error and imputation time vs. the number of imputation
// neighbors k (kNN, IIM, kNNE) over CA with 1k incomplete tuples. On the
// sparse CA data, varying k barely helps the value-copying methods.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  iim::bench::PrintHeader(
      "Figure 10: varying #imputation neighbors k (CA, 1k tuples)",
      "Zhang et al., ICDE 2019, Figure 10");

  const std::vector<std::string> figure_methods = {"kNN", "IIM", "kNNE"};
  iim::data::Table dataset = iim::bench::LoadDataset("CA");
  const std::vector<size_t> ks = {1, 2, 3, 5, 10, 20, 50, 100};

  std::vector<iim::bench::SweepPoint> points;
  for (size_t k : ks) {
    iim::eval::ExperimentConfig config;
    config.inject.tuple_count = 1000;
    config.seed = 901;
    auto res = iim::eval::RunComparison(
        dataset, config,
        iim::bench::MethodSuite({"kNN", "kNNE"},
                                iim::bench::DefaultIimOptions(k)));
    if (!res.ok()) {
      std::fprintf(stderr, "k=%zu: %s\n", k,
                   res.status().ToString().c_str());
      return 1;
    }
    points.push_back({std::to_string(k), std::move(res).value()});
  }

  iim::bench::PrintSweep("k", figure_methods, points);
  // IIM below kNN at every k (Figure 10a), and kNN stays bad regardless
  // of k on sparse data.
  bool iim_below = true;
  double knn_min = 1e300, knn_max = 0.0;
  for (const auto& p : points) {
    double knn = iim::bench::RmsOf(p.result, "kNN");
    knn_min = std::min(knn_min, knn);
    knn_max = std::max(knn_max, knn);
    if (iim::bench::RmsOf(p.result, "IIM") > knn + 1e-12) {
      iim_below = false;
    }
  }
  iim::bench::ShapeCheck("IIM below kNN at every k", iim_below);
  iim::bench::ShapeCheck(
      "changing k does not rescue kNN on sparse CA (max/min < 2x)",
      knn_max < 2.0 * knn_min);
  return 0;
}
