// Figure 6: RMS error and imputation time vs. the number of complete
// tuples n = |r|, over ASF with 100 incomplete tuples.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  iim::bench::PrintHeader(
      "Figure 6: varying #complete tuples n (ASF, 100 tuples)",
      "Zhang et al., ICDE 2019, Figure 6");

  const std::vector<std::string> figure_methods = {
      "kNN", "IIM", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"};
  const std::vector<std::string> baselines = {
      "kNN", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"};

  iim::data::Table dataset = iim::bench::LoadDataset("ASF");
  const std::vector<size_t> sizes = {150, 300, 450,  600,  750,
                                     900, 1000, 1200, 1300, 1400};
  std::vector<iim::bench::SweepPoint> points;
  for (size_t n : sizes) {
    iim::eval::ExperimentConfig config;
    config.inject.tuple_count = 100;
    config.complete_tuples = n;
    config.seed = 501;
    auto res = iim::eval::RunComparison(
        dataset, config,
        iim::bench::MethodSuite(baselines, iim::bench::DefaultIimOptions()));
    if (!res.ok()) {
      std::fprintf(stderr, "n=%zu: %s\n", n,
                   res.status().ToString().c_str());
      return 1;
    }
    points.push_back({std::to_string(n), std::move(res).value()});
  }

  iim::bench::PrintSweep("n", figure_methods, points);
  // More complete tuples help the neighbor-based methods (Figure 6a).
  double knn_first = iim::bench::RmsOf(points.front().result, "kNN");
  double knn_last = iim::bench::RmsOf(points.back().result, "kNN");
  iim::bench::ShapeCheck("kNN improves with more complete tuples",
                         knn_last < knn_first);
  double iim_first = iim::bench::RmsOf(points.front().result, "IIM");
  double iim_last = iim::bench::RmsOf(points.back().result, "IIM");
  iim::bench::ShapeCheck("IIM improves with more complete tuples",
                         iim_last < iim_first);
  iim::bench::ShapeCheck(
      "IIM best at full n",
      iim_last <= knn_last &&
          iim_last <= iim::bench::RmsOf(points.back().result, "GLR"));
  return 0;
}
