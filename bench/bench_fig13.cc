// Figure 13: the stepping tradeoff — varying h changes how many candidate
// l values adaptive learning evaluates. Small h: better RMS, more time.
// The straightforward and incremental schemes must produce *identical*
// imputations (the paper uses this as the correctness check).

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/iim_imputer.h"
#include "eval/report.h"

namespace {

struct SteppingRun {
  double rms = 0.0;
  double determination_seconds = 0.0;
};

SteppingRun RunOnce(const iim::data::Table& dataset, size_t h,
                    bool incremental) {
  iim::core::IimOptions opt;
  opt.k = 5;
  opt.adaptive = true;
  opt.max_ell = 500;
  opt.step_h = h;
  opt.incremental = incremental;

  iim::eval::ExperimentConfig config;
  config.inject.tuple_count = 100;
  config.seed = 1101;
  auto res = iim::eval::RunComparison(dataset, config,
                                      {iim::bench::IimMethod(opt)});
  if (!res.ok()) {
    std::fprintf(stderr, "h=%zu: %s\n", h,
                 res.status().ToString().c_str());
    std::exit(1);
  }
  SteppingRun out;
  out.rms = iim::bench::RmsOf(res.value(), "IIM");
  // fit_seconds aggregates the learning (determination) phases across the
  // per-attribute groups of the run.
  out.determination_seconds = res.value().methods[0].fit_seconds;
  return out;
}

}  // namespace

int main() {
  iim::bench::PrintHeader(
      "Figure 13: stepping h tradeoff (ASF, 100 tuples, max l = 500)",
      "Zhang et al., ICDE 2019, Figure 13");
  iim::data::Table dataset = iim::bench::LoadDataset("ASF");
  const std::vector<size_t> hs = {1, 5, 10, 20, 60, 100, 200, 500};

  iim::eval::TablePrinter table({"h", "RMS (straightforward)",
                                 "RMS (incremental)", "Time straightf.",
                                 "Time increm."});
  bool identical_rms = true;
  double rms_h1 = 0.0, rms_hmax = 0.0;
  double time_h1 = 0.0, time_hmax = 0.0;
  bool incremental_faster_at_h1 = false;

  for (size_t h : hs) {
    SteppingRun straightforward = RunOnce(dataset, h, false);
    SteppingRun incremental = RunOnce(dataset, h, true);
    if (std::fabs(straightforward.rms - incremental.rms) > 1e-9) {
      identical_rms = false;
    }
    if (h == 1) {
      rms_h1 = incremental.rms;
      time_h1 = incremental.determination_seconds;
      incremental_faster_at_h1 = incremental.determination_seconds <
                                 straightforward.determination_seconds;
    }
    rms_hmax = incremental.rms;
    time_hmax = incremental.determination_seconds;
    table.AddRow(
        {std::to_string(h), iim::eval::FormatMetric(straightforward.rms, 3),
         iim::eval::FormatMetric(incremental.rms, 3),
         iim::eval::FormatSeconds(straightforward.determination_seconds),
         iim::eval::FormatSeconds(incremental.determination_seconds)});
  }

  std::printf("%s", table.ToString().c_str());
  iim::bench::ShapeCheck(
      "straightforward and incremental produce identical RMS",
      identical_rms);
  iim::bench::ShapeCheck("small h costs more determination time",
                         time_h1 > time_hmax);
  iim::bench::ShapeCheck("small h imputes at least as well as huge h",
                         rms_h1 <= rms_hmax * 1.05 + 1e-12);
  iim::bench::ShapeCheck("incremental faster than straightforward at h=1",
                         incremental_faster_at_h1);
  return 0;
}
