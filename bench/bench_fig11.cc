// Figure 11: imputation RMS under a fixed number of learning neighbors l
// (same l for every tuple, Algorithm 1) versus adaptive per-tuple
// selection (Algorithm 3), over ASF and CA.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/report.h"

namespace {

// RMS of IIM under the given learning configuration.
double RunIim(const iim::data::Table& dataset, size_t incomplete,
              const iim::core::IimOptions& options, uint64_t seed) {
  iim::eval::ExperimentConfig config;
  config.inject.tuple_count = incomplete;
  config.seed = seed;
  auto res = iim::eval::RunComparison(
      dataset, config, {iim::bench::IimMethod(options)});
  if (!res.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 res.status().ToString().c_str());
    std::exit(1);
  }
  return iim::bench::RmsOf(res.value(), "IIM");
}

void RunPanel(const std::string& dataset_name, size_t n_override,
              size_t incomplete, uint64_t seed) {
  iim::data::Table dataset =
      iim::bench::LoadDataset(dataset_name, n_override);
  const std::vector<size_t> ells = {1,   10,  20,  50,  100,
                                    200, 300, 500, 700, 1000};

  iim::eval::TablePrinter table({"l", "Fixed-l RMS", "Adaptive RMS"});
  iim::core::IimOptions adaptive;
  adaptive.k = 5;
  adaptive.adaptive = true;
  adaptive.max_ell = 1000;
  adaptive.step_h = 5;
  adaptive.validation_k = 10;  // more judges per tuple: quieter selection
  double adaptive_rms = RunIim(dataset, incomplete, adaptive, seed);

  std::vector<double> fixed_rms;
  for (size_t ell : ells) {
    iim::core::IimOptions fixed;
    fixed.k = 5;
    fixed.ell = ell;
    double rms = RunIim(dataset, incomplete, fixed, seed);
    fixed_rms.push_back(rms);
    table.AddRow({std::to_string(ell), iim::eval::FormatMetric(rms, 3),
                  iim::eval::FormatMetric(adaptive_rms, 3)});
  }
  std::printf("(%s)\n%s", dataset_name.c_str(), table.ToString().c_str());
  std::vector<double> sorted = fixed_rms;
  std::sort(sorted.begin(), sorted.end());
  double best_fixed = sorted.front();
  double worst_fixed = sorted.back();
  double median_fixed = sorted[sorted.size() / 2];
  // The paper's claim: a user must pick ONE l without ground truth, and
  // adaptive beats that. Compare against the median fixed choice and stay
  // near the oracle-best fixed l.
  iim::bench::ShapeCheck(
      dataset_name + ": adaptive beats the median fixed l",
      adaptive_rms < median_fixed);
  iim::bench::ShapeCheck(
      dataset_name + ": adaptive within 30% of the oracle-best fixed l",
      adaptive_rms <= best_fixed * 1.30 + 1e-12);
  iim::bench::ShapeCheck(
      dataset_name + ": choosing l matters (worst fixed >> best fixed)",
      worst_fixed > best_fixed * 1.10);
}

}  // namespace

int main() {
  iim::bench::PrintHeader(
      "Figure 11: fixed l vs adaptive learning (ASF, CA)",
      "Zhang et al., ICDE 2019, Figure 11");
  RunPanel("ASF", 0, 100, 1001);
  // CA down-sampled to 5k complete tuples so the l = 1000 fixed point
  // stays affordable; the U-shape and the adaptive line are unaffected.
  RunPanel("CA", 5000, 300, 1002);
  return 0;
}
